package rpcnet

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/replica"
	"github.com/catfish-db/catfish/internal/shard"
	"github.com/catfish-db/catfish/internal/telemetry"
	"github.com/catfish-db/catfish/internal/wire"
)

// RouterConfig tunes DialRouter.
type RouterConfig struct {
	// Client configures each per-shard connection. The adaptive switch is
	// per connection, so Algorithm 1 runs independently per shard; Seed is
	// offset by the shard index so back-off draws decorrelate.
	Client ClientConfig
	// HealthMultiple is the shard-liveness window in heartbeat intervals
	// (shard.DefaultHealthMultiple when 0); liveness tracking is disabled
	// when the servers do not heartbeat.
	HealthMultiple int
	// Backups holds, per shard, backup server addresses in preference
	// order. Nil (or empty inner slices) disables failover for that shard,
	// leaving routing identical to an unreplicated deployment.
	Backups [][]string
	// ReadReplicaUtil, when > 0, routes a sub-search to the least-loaded
	// replica of its shard whenever the active server's predicted
	// utilization exceeds this threshold — backups absorb reads from a
	// predicted-hot primary without any failover.
	ReadReplicaUtil float64
	// Pool, when non-nil, attaches each per-shard client to a pooled
	// multiplexed connection instead of dialing its own socket, so many
	// routers (and plain clients) share a bounded set of TCP connections.
	// The pool's lifetime is the caller's: closing the router detaches its
	// streams but leaves the pooled connections open.
	Pool *MuxPool
}

// RouterStats mirrors shard.RouterStats for the real-socket router.
type RouterStats = shard.RouterStats

// Router is the real-socket scatter-gather client of a sharded deployment:
// one TCP connection — and one adaptive switch — per shard, searches fanned
// out as parallel goroutines to every healthy shard whose coverage
// intersects the query, writes routed to the unique owner. With backups
// configured it also runs the availability protocol (DESIGN.md §5.11):
// reads fall back to backup replicas when the active server refuses
// service, writes promote the most-caught-up backup behind a bumped fencing
// epoch, and a served shard map whose version differs from the router's is
// adopted mid-run (live resharding). Like Client it serves one goroutine at
// a time; per-search scatter concurrency is internal.
type Router struct {
	// mu guards the shape fields (m, cands, active, epochs) against the
	// metrics scrape goroutine; the driving goroutine is the only mutator.
	mu     sync.RWMutex
	m      *shard.Map
	cands  [][]*Client // per shard: [active-preference candidates...]
	active []int       // index into cands[s] of the serving replica
	epochs []uint64    // epoch this router last knew the shard at

	health *shard.Health
	window time.Duration // liveness window (0 = no tracking)
	hbInv  time.Duration
	cfg    RouterConfig
	start  time.Time
	stats  shard.RouterStats

	// dedup turns on merged-result deduplication after the first map
	// adoption: between a reshard's commit and its drain the moved entries
	// exist on both the old and the new shard, so a scatter that hits both
	// must collapse duplicates.
	dedup bool

	targets []int
	subOps  [][]BatchOp
	subIdx  [][]int
	subRes  [][]BatchResult
}

// DialRouter connects to every shard of a deployment, in shard order,
// validates that the servers agree on the deployment shape (position,
// count, and map version), and fetches and verifies the shard map. A
// single unsharded address yields a trivial one-shard router.
//
// Deprecated: use Connect, which unifies single-server and routed
// construction behind functional options.
func DialRouter(addrs []string, cfg RouterConfig) (*Router, error) {
	if len(addrs) == 0 {
		return nil, errors.New("rpcnet: router needs at least one address")
	}
	r := &Router{start: time.Now(), cfg: cfg}
	ok := false
	defer func() {
		if !ok {
			r.closeAll()
		}
	}()
	clients := make([]*Client, 0, len(addrs))
	for i, addr := range addrs {
		c, err := r.dialShard(addr, i)
		if err != nil {
			return nil, err
		}
		clients = append(clients, c)
		h := c.Hello()
		if h.ShardCount <= 1 && len(addrs) == 1 {
			continue // unsharded single server: trivial map below
		}
		if int(h.ShardCount) != len(addrs) {
			return nil, fmt.Errorf("rpcnet: shard %d (%s) reports %d shards, router has %d addresses",
				i, addr, h.ShardCount, len(addrs))
		}
		if int(h.ShardIndex) != i {
			return nil, fmt.Errorf("rpcnet: address %d (%s) is shard %d; list addresses in shard order",
				i, addr, h.ShardIndex)
		}
		if h.MapVersion != clients[0].Hello().MapVersion {
			return nil, fmt.Errorf("%w: shard %d (%s)", shard.ErrVersionMismatch, i, addr)
		}
	}
	if len(addrs) == 1 && clients[0].Hello().ShardCount <= 1 {
		r.m = shard.Single()
	} else {
		m, err := clients[0].FetchShardMap()
		if err != nil {
			return nil, err
		}
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if m.K() != len(addrs) {
			return nil, fmt.Errorf("rpcnet: map has %d cells, router has %d addresses", m.K(), len(addrs))
		}
		r.m = m
	}
	r.cands = make([][]*Client, len(clients))
	r.active = make([]int, len(clients))
	r.epochs = make([]uint64, len(clients))
	for s, c := range clients {
		r.cands[s] = append(r.cands[s], c)
		r.epochs[s] = 1
		if e := c.Hello().ReplicaEpoch; e > r.epochs[s] {
			r.epochs[s] = e
		}
	}
	for s := range r.cands {
		if s >= len(cfg.Backups) {
			break
		}
		for _, baddr := range cfg.Backups[s] {
			c, err := r.dialShard(baddr, s)
			if err != nil {
				return nil, fmt.Errorf("rpcnet: shard %d backup: %w", s, err)
			}
			r.cands[s] = append(r.cands[s], c)
		}
	}
	r.hbInv = time.Duration(clients[0].Hello().HeartbeatMs) * time.Millisecond
	if r.hbInv > 0 {
		r.health = shard.NewHealth(len(r.cands), r.hbInv, cfg.HealthMultiple, time.Since(r.start))
		mult := cfg.HealthMultiple
		if mult <= 0 {
			mult = shard.DefaultHealthMultiple
		}
		r.window = r.hbInv * time.Duration(mult)
	}
	if reg := cfg.Client.Metrics; reg != nil {
		// Per-shard liveness gauges and the availability counters
		// (satellites of DESIGN.md §5.11). The gauges read only heartbeat
		// arrival atomics — never the health tracker, which is owned by the
		// routing goroutine.
		for i := range r.cands {
			i := i
			reg.With("shard", strconv.Itoa(i)).GaugeFunc("catfish_shard_healthy", func() float64 {
				if r.candAlive(i) {
					return 1
				}
				return 0
			})
		}
		reg.CounterFunc("catfish_shard_skipped_searches_total", func() uint64 {
			return atomic.LoadUint64(&r.stats.Skipped)
		})
		reg.CounterFunc("catfish_router_promotions_total", func() uint64 {
			return atomic.LoadUint64(&r.stats.Promotions)
		})
		reg.CounterFunc("catfish_router_backup_reads_total", func() uint64 {
			return atomic.LoadUint64(&r.stats.BackupReads)
		})
		reg.CounterFunc("catfish_router_map_adoptions_total", func() uint64 {
			return atomic.LoadUint64(&r.stats.MapAdoptions)
		})
	}
	ok = true
	return r, nil
}

// dialShard dials one replica of shard i with the per-shard client config.
func (r *Router) dialShard(addr string, i int) (*Client, error) {
	ccfg := r.cfg.Client
	ccfg.Seed += int64(i)
	ccfg.Shard = i
	if ccfg.Metrics != nil {
		// Per-shard label so the scraped series separate by shard.
		ccfg.Metrics = ccfg.Metrics.With("shard", strconv.Itoa(i))
	}
	if r.cfg.Pool != nil {
		m, err := r.cfg.Pool.Mux(addr)
		if err != nil {
			return nil, fmt.Errorf("rpcnet: shard %d (%s): %w", i, addr, err)
		}
		c, err := m.Client(ccfg)
		if err != nil {
			return nil, fmt.Errorf("rpcnet: shard %d (%s): %w", i, addr, err)
		}
		return c, nil
	}
	c, err := Dial(addr, ccfg)
	if err != nil {
		return nil, fmt.Errorf("rpcnet: shard %d (%s): %w", i, addr, err)
	}
	return c, nil
}

// Map returns the deployment's verified shard map (the adopted successor
// after a live reshard).
func (r *Router) Map() *shard.Map {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m
}

// Clients returns the serving connection per shard, in shard order (for
// stats collection; routing should go through the router).
func (r *Router) Clients() []*Client {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Client, len(r.cands))
	for s := range r.cands {
		out[s] = r.cands[s][r.active[s]]
	}
	return out
}

// Snapshot aggregates every connection's counters into one unified
// snapshot.
func (r *Router) Snapshot() telemetry.ClientSnapshot {
	var agg telemetry.ClientSnapshot
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, cs := range r.cands {
		for _, c := range cs {
			agg = agg.Add(c.Stats())
		}
	}
	return agg
}

// Close tears down every connection, returning the first error.
func (r *Router) Close() error { return r.closeAll() }

func (r *Router) closeAll() error {
	var first error
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, cs := range r.cands {
		for _, c := range cs {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() shard.RouterStats {
	return shard.RouterStats{
		Searches:        atomic.LoadUint64(&r.stats.Searches),
		Writes:          atomic.LoadUint64(&r.stats.Writes),
		Fanout:          atomic.LoadUint64(&r.stats.Fanout),
		Skipped:         atomic.LoadUint64(&r.stats.Skipped),
		UnhealthyWrites: atomic.LoadUint64(&r.stats.UnhealthyWrites),
		Promotions:      atomic.LoadUint64(&r.stats.Promotions),
		BackupReads:     atomic.LoadUint64(&r.stats.BackupReads),
		MapAdoptions:    atomic.LoadUint64(&r.stats.MapAdoptions),
	}
}

// shardClient returns the connection serving shard s — the primary until a
// failover swaps in a promoted backup.
func (r *Router) shardClient(s int) *Client { return r.cands[s][r.active[s]] }

// alive reports whether c's last heartbeat is within the liveness window
// from arrival atomics alone (no health-tracker state), so it is safe from
// any goroutine. Before the first heartbeat the connection gets the same
// one-window grace the tracker gives.
func (r *Router) alive(c *Client) bool {
	if r.window == 0 {
		return true
	}
	age, seen := c.HeartbeatAge()
	if !seen {
		return time.Since(r.start) <= r.window
	}
	return age <= r.window
}

// candAlive reports whether any replica of shard s is heartbeating — the
// catfish_shard_healthy gauge.
func (r *Router) candAlive(s int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if s >= len(r.cands) {
		return false
	}
	for _, c := range r.cands[s] {
		if r.alive(c) {
			return true
		}
	}
	return false
}

// healthy reports shard s's liveness from its serving connection's last
// heartbeat arrival. Driving goroutine only (feeds the health tracker).
func (r *Router) healthy(s int) bool {
	if r.health == nil {
		return true
	}
	now := time.Since(r.start)
	if age, seen := r.shardClient(s).HeartbeatAge(); seen {
		// Observation is lazy — arrival times live on the connections — so
		// refresh the tracker before asking it.
		r.health.Observe(s, now-age)
	}
	return r.health.Healthy(s, now)
}

// Healthy reports shard i's current liveness.
func (r *Router) Healthy(i int) bool { return r.healthy(i) }

// failoverErr reports whether err should trigger replica fallback or
// promotion: the shared replica sentinels, plus a torn-down connection
// (the TCP-only case where the process died outright). ErrOverloaded is
// deliberately NOT a failover trigger — a shed means the server is alive
// but saturated, so the router retries with backoff instead of promoting.
func failoverErr(err error) bool {
	return replica.Failover(err) || errors.Is(err, ErrClosed)
}

// overloadAttempts bounds the router's retry budget against an admission
// shed before ErrOverloaded surfaces to the caller; overloadBackoff is the
// first sleep, doubling per attempt (2, 4, 8 ms — long enough for a
// heartbeat-interval utilization spike to pass, short enough to stay
// inside interactive latency budgets).
const (
	overloadAttempts = 3
	overloadBackoff  = 2 * time.Millisecond
)

// searchOverloaded handles an admission shed on shard s's active replica:
// the read first tries every other live replica immediately — backups
// absorb reads from a saturated primary without promotion — then retries
// the active server with doubling backoff before surfacing the typed shed.
func (r *Router) searchOverloaded(s int, q geo.Rect) ([]wire.Item, Method, error) {
	cands, active := r.cands[s], r.active[s]
	for idx, cand := range cands {
		if idx == active || !r.alive(cand) {
			continue
		}
		items, m, err := cand.Search(q)
		if err == nil {
			atomic.AddUint64(&r.stats.BackupReads, 1)
			return items, m, nil
		}
		if !errors.Is(err, ErrOverloaded) && !failoverErr(err) {
			return items, m, err
		}
	}
	backoff := overloadBackoff
	var (
		items []wire.Item
		m     Method
		err   error
	)
	for attempt := 0; attempt < overloadAttempts; attempt++ {
		time.Sleep(backoff)
		backoff *= 2
		items, m, err = cands[active].Search(q)
		if !errors.Is(err, ErrOverloaded) {
			return items, m, err
		}
	}
	return nil, m, err
}

// failover promotes the best remaining candidate of shard s to a bumped
// epoch and makes it the serving replica. The electorate is every
// heartbeating candidate; the winner is the one with the highest applied
// sequence from its last heartbeat (ties to the lowest index, so every
// router elects the same successor). A candidate that fails the promote
// round trip leaves the electorate and the election reruns. Reports whether
// a promotion succeeded.
func (r *Router) failover(s int) bool {
	if len(r.cands[s]) <= 1 {
		return false
	}
	epoch := r.epochs[s] + 1
	applied := make([]uint64, len(r.cands[s]))
	healthy := make([]bool, len(r.cands[s]))
	for i, c := range r.cands[s] {
		_, applied[i] = c.ReplicaState()
		healthy[i] = r.alive(c)
	}
	for range r.cands[s] {
		idx := replica.PickSuccessor(applied, healthy)
		if idx < 0 {
			return false
		}
		if err := r.cands[s][idx].Promote(epoch); err != nil {
			healthy[idx] = false
			continue
		}
		r.mu.Lock()
		r.epochs[s] = epoch
		r.active[s] = idx
		r.mu.Unlock()
		if r.health != nil {
			// The promoted replica gets a fresh liveness window; its own
			// heartbeats take over from here.
			r.health.Observe(s, time.Since(r.start))
		}
		atomic.AddUint64(&r.stats.Promotions, 1)
		return true
	}
	return false
}

// maybeAdopt checks each shard's heartbeat for a served map version that
// differs from the router's and, when found, adopts the successor map.
// Driving goroutine only; called at the top of each routed operation.
func (r *Router) maybeAdopt() {
	for s := range r.cands {
		c := r.shardClient(s)
		if v := c.HeartbeatMapVersion(); v != 0 && v != r.m.Version {
			if r.adoptFrom(c) {
				return
			}
		}
	}
}

// adoptFrom fetches the map a server now serves and installs it when it is
// a valid successor: checksum intact, strictly more cells than the current
// map (versions are content hashes, not ordered, so growth is the staleness
// check), and a full address table so the new shards can be dialed. The
// new shard positions get fresh connections whose hellos must agree on the
// adopted version; existing positions keep their connections and candidate
// lists. Reports whether the map was adopted.
func (r *Router) adoptFrom(from *Client) bool {
	m, addrs, err := from.FetchShardMapFull()
	if err != nil {
		return false
	}
	if m.Validate() != nil || m.K() <= r.m.K() || len(addrs) != m.K() {
		return false
	}
	fresh := make([]*Client, 0, m.K()-r.m.K())
	abort := func() bool {
		for _, c := range fresh {
			c.Close()
		}
		return false
	}
	for s := r.m.K(); s < m.K(); s++ {
		c, derr := r.dialShard(addrs[s], s)
		if derr != nil {
			return abort()
		}
		fresh = append(fresh, c)
		if hv := c.Hello().MapVersion; hv != 0 && hv != m.Version {
			return abort()
		}
	}
	k := m.K()
	cands := make([][]*Client, k)
	active := make([]int, k)
	epochs := make([]uint64, k)
	copy(cands, r.cands)
	copy(active, r.active)
	copy(epochs, r.epochs)
	for i, c := range fresh {
		s := r.m.K() + i
		cands[s] = []*Client{c}
		epochs[s] = 1
		if e := c.Hello().ReplicaEpoch; e > 1 {
			epochs[s] = e
		}
	}
	if r.health != nil {
		now := time.Since(r.start)
		h := shard.NewHealth(k, r.hbInv, r.cfg.HealthMultiple, now)
		for s := 0; s < k; s++ {
			if age, seen := cands[s][active[s]].HeartbeatAge(); seen && age < now {
				h.Observe(s, now-age)
			}
		}
		r.health = h
	}
	r.mu.Lock()
	r.m = m
	r.cands = cands
	r.active = active
	r.epochs = epochs
	r.mu.Unlock()
	// Until the old shard drains its moved entries, both servers answer for
	// the split region; merged results must collapse the duplicates.
	r.dedup = true
	atomic.AddUint64(&r.stats.MapAdoptions, 1)
	return true
}

// healthyTargets computes the scatter set for q, dropping unhealthy shards.
func (r *Router) healthyTargets(q geo.Rect) ([]int, bool) {
	r.targets = r.m.Targets(q, r.targets)
	if r.health == nil {
		return r.targets, true
	}
	healthy := r.targets[:0]
	for _, t := range r.targets {
		// A replicated shard stays in the scatter set even when its active
		// server looks dead: searchShard falls back to a backup replica.
		if len(r.cands[t]) > 1 || r.healthy(t) {
			healthy = append(healthy, t)
		}
	}
	r.targets = healthy
	return r.targets, len(healthy) > 0
}

// searchShard runs one sub-search on shard s. A predicted-hot active server
// (past ReadReplicaUtil) hands the read to the least-loaded replica; an
// active server refusing service (killed, fenced, demoted) makes the search
// retry on the shard's other replicas — backups answer reads without
// promotion, so read availability outlives a dying primary. Runs on scatter
// goroutines: reads shape state, never mutates it.
func (r *Router) searchShard(s int, q geo.Rect) ([]wire.Item, Method, error) {
	cands, active := r.cands[s], r.active[s]
	c := cands[active]
	if u := r.cfg.ReadReplicaUtil; u > 0 && len(cands) > 1 && c.PredictedUtil() > u {
		best := c
		for _, cand := range cands {
			if r.alive(cand) && cand.PredictedUtil() < best.PredictedUtil() {
				best = cand
			}
		}
		if best != c {
			if items, m, err := best.Search(q); err == nil {
				atomic.AddUint64(&r.stats.BackupReads, 1)
				return items, m, nil
			}
		}
	}
	items, m, err := c.Search(q)
	if errors.Is(err, ErrOverloaded) {
		return r.searchOverloaded(s, q)
	}
	if err == nil || !failoverErr(err) {
		return items, m, err
	}
	for idx, cand := range cands {
		if idx == active {
			continue
		}
		bItems, bm, berr := cand.Search(q)
		if berr == nil {
			atomic.AddUint64(&r.stats.BackupReads, 1)
			return bItems, bm, nil
		}
		if !failoverErr(berr) {
			return bItems, bm, berr
		}
	}
	return nil, m, err
}

// itemKey identifies one entry for post-adoption deduplication.
type itemKey struct {
	ref  uint64
	rect geo.Rect
}

// dedupItems collapses duplicate (ref, rect) entries in place, keeping
// first occurrences in merge order.
func dedupItems(items []wire.Item) []wire.Item {
	seen := make(map[itemKey]struct{}, len(items))
	out := items[:0]
	for _, it := range items {
		k := itemKey{ref: it.Ref, rect: it.Rect}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, it)
	}
	return out
}

// Search scatters q to every healthy shard whose coverage intersects it
// (one goroutine per additional shard) and merges the partial result sets
// in shard order. When every target shard is unhealthy it returns an empty
// set rather than blocking.
func (r *Router) Search(q geo.Rect) ([]wire.Item, Method, error) {
	atomic.AddUint64(&r.stats.Searches, 1)
	r.maybeAdopt()
	targets, ok := r.healthyTargets(q)
	if !ok {
		atomic.AddUint64(&r.stats.Skipped, 1)
		return nil, MethodFast, nil
	}
	atomic.AddUint64(&r.stats.Fanout, uint64(len(targets)))
	if len(targets) == 1 {
		return r.searchShard(targets[0], q)
	}
	n := len(targets)
	tg := append([]int(nil), targets...)
	itemsBy := make([][]wire.Item, n)
	methods := make([]Method, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for slot := 1; slot < n; slot++ {
		slot := slot
		wg.Add(1)
		go func() {
			defer wg.Done()
			itemsBy[slot], methods[slot], errs[slot] = r.searchShard(tg[slot], q)
		}()
	}
	itemsBy[0], methods[0], errs[0] = r.searchShard(tg[0], q)
	wg.Wait()
	var items []wire.Item
	for slot := 0; slot < n; slot++ {
		if err := errs[slot]; err != nil {
			return nil, methods[slot], fmt.Errorf("shard %d: %w", tg[slot], err)
		}
		items = append(items, itemsBy[slot]...)
	}
	if r.dedup {
		items = dedupItems(items)
	}
	return items, methods[0], nil
}

// Insert routes the insert to the owning shard, promoting a backup when the
// owner has stopped heartbeating and failing with shard.UnhealthyError when
// no replica can take the write.
func (r *Router) Insert(rect geo.Rect, ref uint64) error {
	r.maybeAdopt()
	owner, err := r.writeTarget(rect)
	if err != nil {
		return err
	}
	return r.writeShard(owner, func(c *Client) error {
		return c.Insert(rect, ref)
	})
}

// Delete routes the delete to the owning shard, promoting a backup when the
// owner has stopped heartbeating and failing with shard.UnhealthyError when
// no replica can take the write.
func (r *Router) Delete(rect geo.Rect, ref uint64) error {
	r.maybeAdopt()
	owner, err := r.writeTarget(rect)
	if err != nil {
		return err
	}
	return r.writeShard(owner, func(c *Client) error {
		return c.Delete(rect, ref)
	})
}

// writeShard runs op against shard s's serving replica, promoting a backup
// and retrying when the server refuses service. Attempts are bounded by the
// candidate count so a fully dead shard terminates with the unified
// UnhealthyError rather than looping. An admission shed retries the same
// replica with doubling backoff — writes cannot move to a backup, and a
// saturated primary is not a dead one — surfacing ErrOverloaded once the
// budget runs out.
func (r *Router) writeShard(s int, op func(*Client) error) error {
	backoff := overloadBackoff
	shed, failed := 0, 0
	for {
		err := op(r.shardClient(s))
		switch {
		case err == nil:
			return nil
		case errors.Is(err, ErrOverloaded):
			if shed++; shed > overloadAttempts {
				return err
			}
			time.Sleep(backoff)
			backoff *= 2
		case !failoverErr(err):
			return err
		default:
			if failed++; failed > len(r.cands[s]) || !r.failover(s) {
				atomic.AddUint64(&r.stats.UnhealthyWrites, 1)
				return &shard.UnhealthyError{Shard: s}
			}
		}
	}
}

func (r *Router) writeTarget(rect geo.Rect) (int, error) {
	atomic.AddUint64(&r.stats.Writes, 1)
	owner := r.m.Owner(rect)
	if r.health != nil && !r.healthy(owner) {
		// A lapsed liveness window is the failover trigger: promote the
		// best backup and write there. Without backups the write fails
		// with the unified unhealthy error.
		if !r.failover(owner) {
			atomic.AddUint64(&r.stats.UnhealthyWrites, 1)
			return 0, &shard.UnhealthyError{Shard: owner}
		}
	}
	return owner, nil
}

// ExecBatch routes a batch through the shards: searches are duplicated
// into the sub-batch of every healthy intersecting shard, writes go to
// their owner's sub-batch (or fail with shard.UnhealthyError when the
// owner is down and no backup can be promoted), per-shard sub-batches run
// as concurrent client batches, and partial results merge back into
// submission order. Operations that hit a server refusing service retry
// individually through the routed single-op paths, which promote a backup
// (writes) or fall back to one (reads).
func (r *Router) ExecBatch(ops []BatchOp, results []BatchResult) []BatchResult {
	results = results[:0]
	for range ops {
		results = append(results, BatchResult{Method: MethodFast})
	}
	if len(ops) == 0 {
		return results
	}
	r.maybeAdopt()
	k := len(r.cands)
	r.subOps = resizeSlices(r.subOps, k)
	r.subIdx = resizeIdx(r.subIdx, k)
	for i, op := range ops {
		switch op.Type {
		case wire.MsgInsert, wire.MsgDelete:
			owner, err := r.writeTarget(op.Rect)
			if err != nil {
				results[i].Err = err
				continue
			}
			r.subOps[owner] = append(r.subOps[owner], op)
			r.subIdx[owner] = append(r.subIdx[owner], i)
		case wire.MsgMove:
			if r.m.Owner(op.Rect) != r.m.Owner(op.Rect2) {
				// A cross-owner move spans two shards' sub-batches, which no
				// single latch covers: run it through the routed two-write
				// path (insert at destination, delete at source) right away.
				// This executes ahead of the batch's deferred same-owner
				// sub-ops, so a cross-owner move is ordered against other
				// ops on the same entry only across ExecBatch calls — a
				// caller chaining several moves of one entry through a
				// single batch must keep the chain within one owner.
				results[i].Err = r.Move(op.Rect, op.Rect2, op.Ref)
				continue
			}
			atomic.AddUint64(&r.stats.Moves, 1)
			owner, err := r.writeTarget(op.Rect2)
			if err != nil {
				results[i].Err = err
				continue
			}
			r.subOps[owner] = append(r.subOps[owner], op)
			r.subIdx[owner] = append(r.subIdx[owner], i)
		case wire.MsgKNN:
			// A kNN's result set is not bounded by its (degenerate) query
			// rect, so it cannot ride the coverage-intersection scatter: fan
			// it to every healthy shard for a local k-best each, reduced to
			// the global k-best after the merge below. The batch trades the
			// single-op path's best-first pruning for staying on the batched
			// fast path.
			atomic.AddUint64(&r.stats.KNNs, 1)
			targets, ok := r.healthyTargets(everything)
			if !ok {
				atomic.AddUint64(&r.stats.Skipped, 1)
				continue
			}
			atomic.AddUint64(&r.stats.Fanout, uint64(len(targets)))
			for _, t := range targets {
				r.subOps[t] = append(r.subOps[t], op)
				r.subIdx[t] = append(r.subIdx[t], i)
			}
		default:
			atomic.AddUint64(&r.stats.Searches, 1)
			targets, ok := r.healthyTargets(op.Rect)
			if !ok {
				atomic.AddUint64(&r.stats.Skipped, 1)
				continue
			}
			atomic.AddUint64(&r.stats.Fanout, uint64(len(targets)))
			for _, t := range targets {
				r.subOps[t] = append(r.subOps[t], op)
				r.subIdx[t] = append(r.subIdx[t], i)
			}
		}
	}
	busy := make([]int, 0, k)
	for s := 0; s < k; s++ {
		if len(r.subOps[s]) > 0 {
			busy = append(busy, s)
		}
	}
	if len(busy) == 0 {
		return results
	}
	if len(r.subRes) < k {
		r.subRes = make([][]BatchResult, k)
	}
	var wg sync.WaitGroup
	for _, s := range busy[1:] {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.subRes[s] = r.shardClient(s).ExecBatch(r.subOps[s], r.subRes[s])
		}()
	}
	s0 := busy[0]
	r.subRes[s0] = r.shardClient(s0).ExecBatch(r.subOps[s0], r.subRes[s0])
	wg.Wait()
	for _, s := range busy {
		for j, res := range r.subRes[s] {
			i := r.subIdx[s][j]
			if res.Err != nil && results[i].Err == nil {
				results[i].Err = fmt.Errorf("shard %d: %w", s, res.Err)
			}
			results[i].Items = append(results[i].Items, res.Items...)
			// Offloading is sticky so the merged method reports whether any
			// shard's sub-search ran as a client-side traversal.
			if results[i].Method != MethodOffload {
				results[i].Method = res.Method
			}
		}
	}
	// Each shard answered a batched kNN with its own ascending k-best; the
	// global k-best is the distance-ordered, deduplicated head of the merged
	// union. Distances recompute bit-exactly from the round-tripped rects,
	// so the reduction matches a local Nearest over the union of the shards.
	for i := range results {
		if ops[i].Type == wire.MsgKNN && results[i].Err == nil {
			results[i].Items = shard.KBestItems(results[i].Items, int(ops[i].Ref), ops[i].Rect)
		}
	}
	// Repair pass: replica-class failures and admission sheds retry through
	// the routed single-op paths (which fall back to backups, promote, or
	// back off as the error class demands). Inert at R=1 with admission
	// control off, where those statuses never occur.
	for i := range results {
		err := results[i].Err
		if err == nil || (!failoverErr(err) && !errors.Is(err, ErrOverloaded)) {
			continue
		}
		op := ops[i]
		results[i].Items = results[i].Items[:0]
		switch op.Type {
		case wire.MsgInsert:
			results[i].Err = r.Insert(op.Rect, op.Ref)
		case wire.MsgDelete:
			results[i].Err = r.Delete(op.Rect, op.Ref)
		case wire.MsgMove:
			results[i].Err = r.Move(op.Rect, op.Rect2, op.Ref)
		case wire.MsgKNN:
			x, y := op.Rect.Center()
			nbrs, m, err := r.Nearest(int(op.Ref), x, y)
			results[i].Items = append(results[i].Items, itemsOfNeighbors(nbrs)...)
			results[i].Method = m
			results[i].Err = err
		default:
			items, m, err := r.Search(op.Rect)
			results[i].Items = append(results[i].Items, items...)
			results[i].Method = m
			results[i].Err = err
		}
	}
	if r.dedup {
		for i := range results {
			if len(results[i].Items) > 1 {
				results[i].Items = dedupItems(results[i].Items)
			}
		}
	}
	return results
}

func resizeSlices(s [][]BatchOp, k int) [][]BatchOp {
	if len(s) < k {
		s = make([][]BatchOp, k)
	}
	s = s[:k]
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

func resizeIdx(s [][]int, k int) [][]int {
	if len(s) < k {
		s = make([][]int, k)
	}
	s = s[:k]
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}
