package rpcnet

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/shard"
	"github.com/catfish-db/catfish/internal/telemetry"
	"github.com/catfish-db/catfish/internal/wire"
)

// RouterConfig tunes DialRouter.
type RouterConfig struct {
	// Client configures each per-shard connection. The adaptive switch is
	// per connection, so Algorithm 1 runs independently per shard; Seed is
	// offset by the shard index so back-off draws decorrelate.
	Client ClientConfig
	// HealthMultiple is the shard-liveness window in heartbeat intervals
	// (shard.DefaultHealthMultiple when 0); liveness tracking is disabled
	// when the servers do not heartbeat.
	HealthMultiple int
}

// RouterStats mirrors shard.RouterStats for the real-socket router.
type RouterStats = shard.RouterStats

// Router is the real-socket scatter-gather client of a sharded deployment:
// one TCP connection — and one adaptive switch — per shard, searches fanned
// out as parallel goroutines to every healthy shard whose coverage
// intersects the query, writes routed to the unique owner. Like Client it
// serves one goroutine at a time; per-search scatter concurrency is
// internal.
type Router struct {
	m       *shard.Map
	clients []*Client
	health  *shard.Health
	start   time.Time
	stats   shard.RouterStats

	targets []int
	subOps  [][]BatchOp
	subIdx  [][]int
	subRes  [][]BatchResult
}

// DialRouter connects to every shard of a deployment, in shard order,
// validates that the servers agree on the deployment shape (position,
// count, and map version), and fetches and verifies the shard map. A
// single unsharded address yields a trivial one-shard router.
func DialRouter(addrs []string, cfg RouterConfig) (*Router, error) {
	if len(addrs) == 0 {
		return nil, errors.New("rpcnet: router needs at least one address")
	}
	r := &Router{start: time.Now()}
	ok := false
	defer func() {
		if !ok {
			r.closeAll()
		}
	}()
	for i, addr := range addrs {
		ccfg := cfg.Client
		ccfg.Seed += int64(i)
		ccfg.Shard = i
		if ccfg.Metrics != nil && len(addrs) > 1 {
			// Per-shard label so the scraped series separate by shard.
			ccfg.Metrics = ccfg.Metrics.With("shard", strconv.Itoa(i))
		}
		c, err := Dial(addr, ccfg)
		if err != nil {
			return nil, fmt.Errorf("rpcnet: shard %d (%s): %w", i, addr, err)
		}
		r.clients = append(r.clients, c)
		h := c.Hello()
		if h.ShardCount <= 1 && len(addrs) == 1 {
			continue // unsharded single server: trivial map below
		}
		if int(h.ShardCount) != len(addrs) {
			return nil, fmt.Errorf("rpcnet: shard %d (%s) reports %d shards, router has %d addresses",
				i, addr, h.ShardCount, len(addrs))
		}
		if int(h.ShardIndex) != i {
			return nil, fmt.Errorf("rpcnet: address %d (%s) is shard %d; list addresses in shard order",
				i, addr, h.ShardIndex)
		}
		if h.MapVersion != r.clients[0].Hello().MapVersion {
			return nil, fmt.Errorf("%w: shard %d (%s)", shard.ErrVersionMismatch, i, addr)
		}
	}
	if len(addrs) == 1 && r.clients[0].Hello().ShardCount <= 1 {
		r.m = shard.Single()
	} else {
		m, err := r.clients[0].FetchShardMap()
		if err != nil {
			return nil, err
		}
		if m.K() != len(addrs) {
			return nil, fmt.Errorf("rpcnet: map has %d cells, router has %d addresses", m.K(), len(addrs))
		}
		r.m = m
	}
	if hb := time.Duration(r.clients[0].Hello().HeartbeatMs) * time.Millisecond; hb > 0 {
		r.health = shard.NewHealth(len(r.clients), hb, cfg.HealthMultiple, time.Since(r.start))
	}
	ok = true
	return r, nil
}

// Map returns the deployment's verified shard map.
func (r *Router) Map() *shard.Map { return r.m }

// Clients returns the per-shard connections, in shard order (for stats
// collection; routing should go through the router).
func (r *Router) Clients() []*Client { return r.clients }

// Snapshot aggregates every per-shard client's counters into one unified
// snapshot.
func (r *Router) Snapshot() telemetry.ClientSnapshot {
	var agg telemetry.ClientSnapshot
	for _, c := range r.clients {
		agg = agg.Add(c.Stats())
	}
	return agg
}

// Close tears down every shard connection, returning the first error.
func (r *Router) Close() error { return r.closeAll() }

func (r *Router) closeAll() error {
	var first error
	for _, c := range r.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() shard.RouterStats {
	return shard.RouterStats{
		Searches:        atomic.LoadUint64(&r.stats.Searches),
		Writes:          atomic.LoadUint64(&r.stats.Writes),
		Fanout:          atomic.LoadUint64(&r.stats.Fanout),
		Skipped:         atomic.LoadUint64(&r.stats.Skipped),
		UnhealthyWrites: atomic.LoadUint64(&r.stats.UnhealthyWrites),
	}
}

// healthy reports shard i's liveness from its connection's last heartbeat
// arrival.
func (r *Router) healthy(i int) bool {
	if r.health == nil {
		return true
	}
	now := time.Since(r.start)
	if _, seen := r.clients[i].HeartbeatAge(); seen {
		// Observation is lazy — arrival times live on the connections — so
		// refresh the tracker before asking it.
		age, _ := r.clients[i].HeartbeatAge()
		r.health.Observe(i, now-age)
	}
	return r.health.Healthy(i, now)
}

// Healthy reports shard i's current liveness.
func (r *Router) Healthy(i int) bool { return r.healthy(i) }

// healthyTargets computes the scatter set for q, dropping unhealthy shards.
func (r *Router) healthyTargets(q geo.Rect) ([]int, bool) {
	r.targets = r.m.Targets(q, r.targets)
	if r.health == nil {
		return r.targets, true
	}
	healthy := r.targets[:0]
	for _, t := range r.targets {
		if r.healthy(t) {
			healthy = append(healthy, t)
		}
	}
	r.targets = healthy
	return r.targets, len(healthy) > 0
}

// Search scatters q to every healthy shard whose coverage intersects it
// (one goroutine per additional shard) and merges the partial result sets
// in shard order. When every target shard is unhealthy it returns an empty
// set rather than blocking.
func (r *Router) Search(q geo.Rect) ([]wire.Item, Method, error) {
	atomic.AddUint64(&r.stats.Searches, 1)
	targets, ok := r.healthyTargets(q)
	if !ok {
		atomic.AddUint64(&r.stats.Skipped, 1)
		return nil, MethodFast, nil
	}
	atomic.AddUint64(&r.stats.Fanout, uint64(len(targets)))
	if len(targets) == 1 {
		return r.clients[targets[0]].Search(q)
	}
	n := len(targets)
	tg := append([]int(nil), targets...)
	itemsBy := make([][]wire.Item, n)
	methods := make([]Method, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for slot := 1; slot < n; slot++ {
		slot := slot
		wg.Add(1)
		go func() {
			defer wg.Done()
			itemsBy[slot], methods[slot], errs[slot] = r.clients[tg[slot]].Search(q)
		}()
	}
	itemsBy[0], methods[0], errs[0] = r.clients[tg[0]].Search(q)
	wg.Wait()
	var items []wire.Item
	for slot := 0; slot < n; slot++ {
		if err := errs[slot]; err != nil {
			return nil, methods[slot], fmt.Errorf("shard %d: %w", tg[slot], err)
		}
		items = append(items, itemsBy[slot]...)
	}
	return items, methods[0], nil
}

// Insert routes the insert to the owning shard, failing with
// shard.UnhealthyError when that shard has stopped heartbeating.
func (r *Router) Insert(rect geo.Rect, ref uint64) error {
	owner, err := r.writeTarget(rect)
	if err != nil {
		return err
	}
	return r.clients[owner].Insert(rect, ref)
}

// Delete routes the delete to the owning shard, failing with
// shard.UnhealthyError when that shard has stopped heartbeating.
func (r *Router) Delete(rect geo.Rect, ref uint64) error {
	owner, err := r.writeTarget(rect)
	if err != nil {
		return err
	}
	return r.clients[owner].Delete(rect, ref)
}

func (r *Router) writeTarget(rect geo.Rect) (int, error) {
	atomic.AddUint64(&r.stats.Writes, 1)
	owner := r.m.Owner(rect)
	if !r.healthy(owner) {
		atomic.AddUint64(&r.stats.UnhealthyWrites, 1)
		return 0, &shard.UnhealthyError{Shard: owner}
	}
	return owner, nil
}

// ExecBatch routes a batch through the shards: searches are duplicated
// into the sub-batch of every healthy intersecting shard, writes go to
// their owner's sub-batch (or fail with shard.UnhealthyError when the
// owner is down), per-shard sub-batches run as concurrent client batches,
// and partial results merge back into submission order.
func (r *Router) ExecBatch(ops []BatchOp, results []BatchResult) []BatchResult {
	results = results[:0]
	for range ops {
		results = append(results, BatchResult{Method: MethodFast})
	}
	if len(ops) == 0 {
		return results
	}
	k := len(r.clients)
	r.subOps = resizeSlices(r.subOps, k)
	r.subIdx = resizeIdx(r.subIdx, k)
	for i, op := range ops {
		switch op.Type {
		case wire.MsgInsert, wire.MsgDelete:
			atomic.AddUint64(&r.stats.Writes, 1)
			owner := r.m.Owner(op.Rect)
			if !r.healthy(owner) {
				atomic.AddUint64(&r.stats.UnhealthyWrites, 1)
				results[i].Err = &shard.UnhealthyError{Shard: owner}
				continue
			}
			r.subOps[owner] = append(r.subOps[owner], op)
			r.subIdx[owner] = append(r.subIdx[owner], i)
		default:
			atomic.AddUint64(&r.stats.Searches, 1)
			targets, ok := r.healthyTargets(op.Rect)
			if !ok {
				atomic.AddUint64(&r.stats.Skipped, 1)
				continue
			}
			atomic.AddUint64(&r.stats.Fanout, uint64(len(targets)))
			for _, t := range targets {
				r.subOps[t] = append(r.subOps[t], op)
				r.subIdx[t] = append(r.subIdx[t], i)
			}
		}
	}
	busy := make([]int, 0, k)
	for s := 0; s < k; s++ {
		if len(r.subOps[s]) > 0 {
			busy = append(busy, s)
		}
	}
	if len(busy) == 0 {
		return results
	}
	if len(r.subRes) < k {
		r.subRes = make([][]BatchResult, k)
	}
	var wg sync.WaitGroup
	for _, s := range busy[1:] {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.subRes[s] = r.clients[s].ExecBatch(r.subOps[s], r.subRes[s])
		}()
	}
	s0 := busy[0]
	r.subRes[s0] = r.clients[s0].ExecBatch(r.subOps[s0], r.subRes[s0])
	wg.Wait()
	for _, s := range busy {
		for j, res := range r.subRes[s] {
			i := r.subIdx[s][j]
			if res.Err != nil && results[i].Err == nil {
				results[i].Err = fmt.Errorf("shard %d: %w", s, res.Err)
			}
			results[i].Items = append(results[i].Items, res.Items...)
			// Offloading is sticky so the merged method reports whether any
			// shard's sub-search ran as a client-side traversal.
			if results[i].Method != MethodOffload {
				results[i].Method = res.Method
			}
		}
	}
	return results
}

func resizeSlices(s [][]BatchOp, k int) [][]BatchOp {
	if len(s) < k {
		s = make([][]BatchOp, k)
	}
	s = s[:k]
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

func resizeIdx(s [][]int, k int) [][]int {
	if len(s) < k {
		s = make([][]int, k)
	}
	s = s[:k]
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}
