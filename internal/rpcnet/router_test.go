package rpcnet

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/shard"
	"github.com/catfish-db/catfish/internal/wire"
)

// startShardedDeploy builds one dataset, partitions it K ways, and serves
// each shard's slice from its own server on a random localhost port.
func startShardedDeploy(t *testing.T, n, k int, hbInv time.Duration) ([]string, []*Server, *shard.Map, []rtree.Entry) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	data := make([]rtree.Entry, n)
	for i := range data {
		data[i] = rtree.Entry{Rect: randRect(rng, 0.01), Ref: uint64(i)}
	}
	m, err := shard.Build(data, shard.Config{K: k, MaxInsertEdge: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	assign := m.Assign(data)
	addrs := make([]string, k)
	srvs := make([]*Server, k)
	for s := 0; s < k; s++ {
		reg, err := region.New(1<<14, 4096)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := rtree.New(reg, rtree.Config{MaxEntries: 16})
		if err != nil {
			t.Fatal(err)
		}
		if len(assign[s]) > 0 {
			if err := tree.BulkLoad(append([]rtree.Entry(nil), assign[s]...), 0); err != nil {
				t.Fatal(err)
			}
		}
		srv, err := Listen("127.0.0.1:0", tree, ServerConfig{
			HeartbeatInterval: hbInv,
			ShardMap:          m,
			ShardIndex:        s,
		})
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve() //nolint:errcheck // returns on Close
		t.Cleanup(func() { srv.Close() })
		addrs[s] = srv.Addr().String()
		srvs[s] = srv
	}
	return addrs, srvs, m, data
}

func sortedRefSet(items []wire.Item) []uint64 {
	refs := make([]uint64, len(items))
	for i, it := range items {
		refs[i] = it.Ref
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	return refs
}

func equalRefs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// netProbeRect finds a tiny rect whose scatter set is exactly {want}.
func netProbeRect(t *testing.T, m *shard.Map, want int) geo.Rect {
	t.Helper()
	const eps = 1e-6
	var scratch []int
	for x := 0.01; x < 1; x += 0.017 {
		for y := 0.01; y < 1; y += 0.017 {
			r := geo.Rect{MinX: x, MaxX: x + eps, MinY: y, MaxY: y + eps}
			scratch = m.Targets(r, scratch)
			if len(scratch) == 1 && scratch[0] == want && m.Owner(r) == want {
				return r
			}
		}
	}
	t.Fatalf("no probe rect lands only on shard %d", want)
	return geo.Rect{}
}

func TestRouterEquivalence(t *testing.T) {
	// A K=4 router and a single server loaded with the whole dataset must
	// answer every search identically, through interleaved inserts and
	// deletes applied to both.
	const n = 4000
	addrs, _, _, data := startShardedDeploy(t, n, 4, 0)
	r, err := DialRouter(addrs, RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	if r.Map().K() != 4 {
		t.Fatalf("map K = %d", r.Map().K())
	}

	// Reference single server over the same entries. startServer seeds its
	// own tree, so load this one by hand from the shared dataset.
	srv, refTree := startServer(t, 0, ServerConfig{})
	if err := refTree.BulkLoad(append([]rtree.Entry(nil), data...), 0); err != nil {
		t.Fatal(err)
	}
	single := dial(t, srv, ClientConfig{})

	rng := rand.New(rand.NewSource(12))
	live := append([]rtree.Entry(nil), data...)
	nextRef := uint64(n + 1000)
	for op := 0; op < 200; op++ {
		switch roll := rng.Float64(); {
		case roll < 0.6:
			q := randRect(rng, rng.Float64()*0.3)
			got, _, err := r.Search(q)
			if err != nil {
				t.Fatalf("op %d: router search: %v", op, err)
			}
			want, _, err := single.Search(q)
			if err != nil {
				t.Fatalf("op %d: single search: %v", op, err)
			}
			if !equalRefs(sortedRefSet(got), sortedRefSet(want)) {
				t.Fatalf("op %d: search %v: router %d items, single %d items", op, q, len(got), len(want))
			}
		case roll < 0.8:
			e := rtree.Entry{Rect: randRect(rng, 0.01), Ref: nextRef}
			nextRef++
			if err := r.Insert(e.Rect, e.Ref); err != nil {
				t.Fatalf("op %d: router insert: %v", op, err)
			}
			if err := single.Insert(e.Rect, e.Ref); err != nil {
				t.Fatalf("op %d: single insert: %v", op, err)
			}
			live = append(live, e)
		default:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			e := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := r.Delete(e.Rect, e.Ref); err != nil {
				t.Fatalf("op %d: router delete: %v", op, err)
			}
			if err := single.Delete(e.Rect, e.Ref); err != nil {
				t.Fatalf("op %d: single delete: %v", op, err)
			}
		}
	}

	// Final full scan: the two deployments hold identical entry sets.
	all := geo.Rect{MinX: -1, MaxX: 2, MinY: -1, MaxY: 2}
	got, _, err := r.Search(all)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := single.Search(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(live) {
		t.Fatalf("single server holds %d entries, expected %d", len(want), len(live))
	}
	if !equalRefs(sortedRefSet(got), sortedRefSet(want)) {
		t.Fatalf("final scan differs: router %d items, single %d items", len(got), len(want))
	}

	st := r.Stats()
	if st.Searches == 0 || st.Writes == 0 || st.Fanout < st.Searches {
		t.Errorf("stats look wrong: %+v", st)
	}
}

func TestRouterBatchedEquivalence(t *testing.T) {
	const n = 3000
	addrs, _, _, data := startShardedDeploy(t, n, 2, 0)
	r, err := DialRouter(addrs, RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })

	srv, refTree := startServer(t, 0, ServerConfig{})
	if err := refTree.BulkLoad(append([]rtree.Entry(nil), data...), 0); err != nil {
		t.Fatal(err)
	}
	single := dial(t, srv, ClientConfig{})

	rng := rand.New(rand.NewSource(13))
	nextRef := uint64(n + 1000)
	var rres, sres []BatchResult
	for round := 0; round < 10; round++ {
		ops := make([]BatchOp, 0, 8)
		for len(ops) < 8 {
			if rng.Float64() < 0.7 {
				ops = append(ops, BatchOp{Type: wire.MsgSearch, Rect: randRect(rng, rng.Float64()*0.2)})
			} else {
				ops = append(ops, BatchOp{Type: wire.MsgInsert, Rect: randRect(rng, 0.01), Ref: nextRef})
				nextRef++
			}
		}
		rres = r.ExecBatch(ops, rres)
		sres = single.ExecBatch(ops, sres)
		for i := range ops {
			if rres[i].Err != nil || sres[i].Err != nil {
				t.Fatalf("round %d op %d: errs %v / %v", round, i, rres[i].Err, sres[i].Err)
			}
			if !equalRefs(sortedRefSet(rres[i].Items), sortedRefSet(sres[i].Items)) {
				t.Fatalf("round %d op %d: router %d items, single %d items",
					round, i, len(rres[i].Items), len(sres[i].Items))
			}
		}
	}
}

func TestRouterDroppedHeartbeat(t *testing.T) {
	const hbInv = 4 * time.Millisecond
	addrs, srvs, m, _ := startShardedDeploy(t, 2000, 2, hbInv)
	r, err := DialRouter(addrs, RouterConfig{HealthMultiple: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })

	probe0 := netProbeRect(t, m, 0)
	probe1 := netProbeRect(t, m, 1)

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(hbInv / 2)
		}
	}

	waitFor("both shards healthy", func() bool { return r.Healthy(0) && r.Healthy(1) })

	srvs[1].PauseHeartbeats(true)
	waitFor("shard 1 unhealthy", func() bool { return !r.Healthy(1) })
	if !r.Healthy(0) {
		t.Fatal("shard 0 must stay healthy")
	}

	// Searches targeting only the dead shard degrade to an empty result.
	before := r.Stats().Skipped
	items, _, err := r.Search(probe1)
	if err != nil || len(items) != 0 {
		t.Fatalf("search on dead shard: items=%d err=%v", len(items), err)
	}
	if got := r.Stats().Skipped; got != before+1 {
		t.Errorf("skipped counter %d, want %d", got, before+1)
	}
	// A search spanning both shards still returns the healthy shard's part.
	if _, _, err := r.Search(geo.Rect{MinX: 0, MaxX: 1, MinY: 0, MaxY: 1}); err != nil {
		t.Fatalf("degraded wide search: %v", err)
	}

	// Writes owned by the dead shard fail typed; the healthy shard accepts.
	err = r.Insert(probe1, 1<<30)
	if !errors.Is(err, shard.ErrUnhealthy) {
		t.Fatalf("insert to dead shard: %v", err)
	}
	var ue *shard.UnhealthyError
	if !errors.As(err, &ue) || ue.Shard != 1 {
		t.Fatalf("wrong shard in error: %v", err)
	}
	if err := r.Insert(probe0, 1<<30+1); err != nil {
		t.Fatalf("insert to healthy shard: %v", err)
	}
	res := r.ExecBatch([]BatchOp{{Type: wire.MsgInsert, Rect: probe1, Ref: 1<<30 + 2}}, nil)
	if !errors.Is(res[0].Err, shard.ErrUnhealthy) {
		t.Fatalf("batched insert to dead shard: %v", res[0].Err)
	}

	// Heartbeats resume: the shard recovers and takes writes again.
	srvs[1].PauseHeartbeats(false)
	waitFor("shard 1 recovered", func() bool { return r.Healthy(1) })
	if err := r.Insert(probe1, 1<<30+3); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
}

func TestRouterHelloValidation(t *testing.T) {
	addrs, _, _, _ := startShardedDeploy(t, 500, 2, 0)

	// Addresses out of shard order must be rejected.
	if _, err := DialRouter([]string{addrs[1], addrs[0]}, RouterConfig{}); err == nil {
		t.Fatal("swapped shard addresses accepted")
	}
	// A partial address list must be rejected.
	if _, err := DialRouter(addrs[:1], RouterConfig{}); err == nil {
		t.Fatal("partial address list accepted")
	}
	// The correct list still works after the failed attempts.
	r, err := DialRouter(addrs, RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
}

func TestRouterSingleUnsharded(t *testing.T) {
	// One unsharded server is a valid trivial deployment: the router
	// degenerates to a plain client behind a K=1 map.
	srv, tree := startServer(t, 1000, ServerConfig{})
	r, err := DialRouter([]string{srv.Addr().String()}, RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	if r.Map().K() != 1 {
		t.Fatalf("map K = %d", r.Map().K())
	}
	q := geo.Rect{MinX: 0, MaxX: 1, MinY: 0, MaxY: 1}
	got, _, err := r.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := tree.SearchCollect(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("router %d items, tree %d", len(got), len(want))
	}
	// An unsharded server has no map to serve.
	if _, err := r.Clients()[0].FetchShardMap(); err == nil {
		t.Fatal("unsharded server served a shard map")
	}
}
