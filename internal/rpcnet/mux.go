// Connection multiplexing (DESIGN.md §5.12): many logical clients share
// one TCP connection. Each attached Client owns a 32-bit stream id; the
// request ids it stamps into frames are stream<<32 | seq, so the existing
// request-id demultiplexer doubles as the stream demultiplexer and the
// wire format is unchanged. One reader goroutine and one coalescing
// writer serve the whole connection regardless of how many logical
// clients ride it — 10k clients over 64 connections cost 128 connection
// goroutines, not 20k.
//
// Frame delivery uses unbounded per-request queues (waiter) instead of
// blocking channel sends, so one slow logical client can never stall the
// connection's read loop — and with it every other stream (no
// head-of-line blocking across streams).
package rpcnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/catfish-db/catfish/internal/wire"
)

// ErrStreamsExhausted reports that a Mux has no free stream ids left
// (MaxStreams logical clients are attached).
var ErrStreamsExhausted = errors.New("rpcnet: stream ids exhausted")

// MuxConfig tunes a multiplexed connection.
type MuxConfig struct {
	// MaxStreams caps concurrently-attached logical clients (default
	// 65536; the hard ceiling is 2^32).
	MaxStreams int
	// WriteBuffer bounds the connection's pending outbound bytes before
	// senders block (0 = 1 MiB).
	WriteBuffer int
}

// Mux is one shared TCP connection carrying many logical clients. Attach
// clients with Client; they detach on Close and their stream ids are
// pooled for reuse.
type Mux struct {
	conn  net.Conn
	addr  string
	hello wire.Hello
	w     *connWriter
	cfg   MuxConfig

	mu         sync.Mutex
	waiters    map[uint64]*waiter
	streams    map[uint32]*Client
	freeIDs    []uint32
	nextStream uint32
	readerr    error
	done       chan struct{}
}

// DialMux connects to a server and performs the hello exchange, returning
// a connection ready for Client attachments.
func DialMux(addr string, cfg MuxConfig) (*Mux, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if cfg.MaxStreams <= 0 {
		cfg.MaxStreams = 1 << 16
	}
	frame, err := readFrame(conn, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpcnet: hello: %w", err)
	}
	hello, err := wire.DecodeHello(frame)
	if err != nil {
		conn.Close()
		return nil, err
	}
	m := &Mux{
		conn:    conn,
		addr:    addr,
		hello:   hello,
		cfg:     cfg,
		w:       newConnWriter(conn, nil, cfg.WriteBuffer, nil),
		waiters: make(map[uint64]*waiter),
		streams: make(map[uint32]*Client),
		done:    make(chan struct{}),
	}
	go m.readLoop()
	return m, nil
}

// Addr returns the dialed address.
func (m *Mux) Addr() string { return m.addr }

// Hello returns the server's connection bootstrap info.
func (m *Mux) Hello() wire.Hello { return m.hello }

// Streams returns the number of currently-attached logical clients.
func (m *Mux) Streams() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.streams)
}

// Close tears down the connection and every attached client's pending
// calls.
func (m *Mux) Close() error {
	err := m.conn.Close()
	m.w.close()
	<-m.done
	return err
}

// send enqueues one frame on the shared writer (coalesced flush).
func (m *Mux) send(payload []byte) error { return m.w.enqueue(payload) }

// err returns the sticky read error wrapped as ErrClosed, or nil.
func (m *Mux) err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.readerr != nil {
		return fmt.Errorf("%w: %v", ErrClosed, m.readerr)
	}
	return nil
}

// register installs a waiter for one request id, failing if the
// connection is already dead.
func (m *Mux) register(id uint64, w *waiter) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.readerr != nil {
		return fmt.Errorf("%w: %v", ErrClosed, m.readerr)
	}
	m.waiters[id] = w
	return nil
}

// registerAll installs one shared waiter for many request ids (batch).
func (m *Mux) registerAll(ids []uint64, w *waiter) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.readerr != nil {
		return fmt.Errorf("%w: %v", ErrClosed, m.readerr)
	}
	for _, id := range ids {
		m.waiters[id] = w
	}
	return nil
}

func (m *Mux) unregister(id uint64) {
	m.mu.Lock()
	delete(m.waiters, id)
	m.mu.Unlock()
}

func (m *Mux) unregisterAll(ids []uint64) {
	m.mu.Lock()
	for _, id := range ids {
		delete(m.waiters, id)
	}
	m.mu.Unlock()
}

// allocStream hands out the lowest free stream id, reusing detached ids
// before minting new ones.
func (m *Mux) allocStream() (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.readerr != nil {
		return 0, fmt.Errorf("%w: %v", ErrClosed, m.readerr)
	}
	if n := len(m.freeIDs); n > 0 {
		id := m.freeIDs[n-1]
		m.freeIDs = m.freeIDs[:n-1]
		return id, nil
	}
	if uint64(m.nextStream) >= uint64(m.cfg.MaxStreams) {
		return 0, ErrStreamsExhausted
	}
	id := m.nextStream
	m.nextStream++
	return id, nil
}

// detach releases a client's stream: its pending waiters are closed and
// the id returns to the pool.
func (m *Mux) detach(c *Client) {
	m.mu.Lock()
	if _, ok := m.streams[c.stream]; ok {
		delete(m.streams, c.stream)
		m.freeIDs = append(m.freeIDs, c.stream)
	}
	for id, w := range m.waiters {
		if uint32(id>>32) == c.stream {
			w.closeW()
			delete(m.waiters, id)
		}
	}
	m.mu.Unlock()
}

// readLoop demultiplexes the shared connection: heartbeats fan out to
// every attached client, everything else routes to its request's waiter.
// Delivery never blocks (waiter queues are unbounded), so a slow consumer
// only grows its own queue.
func (m *Mux) readLoop() {
	defer close(m.done)
	var buf []byte
	for {
		frame, err := readFrame(m.conn, buf)
		if err != nil {
			m.mu.Lock()
			m.readerr = err
			for id, w := range m.waiters {
				w.closeW()
				delete(m.waiters, id)
			}
			m.mu.Unlock()
			return
		}
		buf = frame
		typ, err := wire.PeekType(frame)
		if err != nil {
			continue
		}
		switch typ {
		case wire.MsgHeartbeat:
			if hb, err := wire.DecodeHeartbeat(frame); err == nil {
				m.mu.Lock()
				for _, c := range m.streams {
					c.noteHeartbeat(hb)
				}
				m.mu.Unlock()
			}
		case wire.MsgResponse:
			if resp, err := wire.DecodeResponse(frame); err == nil {
				m.deliver(resp.ID, frame)
			}
		case wire.MsgChunkData:
			if cd, err := wire.DecodeChunkData(frame); err == nil {
				m.deliver(cd.ID, frame)
			}
		case wire.MsgVersionData:
			if vd, err := wire.DecodeVersionData(frame); err == nil {
				m.deliver(vd.ID, frame)
			}
		case wire.MsgSpanData:
			if sd, err := wire.DecodeSpanData(frame); err == nil {
				m.deliver(sd.ID, frame)
			}
		case wire.MsgFetchDesc:
			if d, err := wire.DecodeFetchDesc(frame); err == nil {
				m.deliver(d.ID, frame)
			}
		case wire.MsgShardMapData:
			if md, err := wire.DecodeShardMapData(frame); err == nil {
				m.deliver(md.ID, frame)
			}
		case wire.MsgBatch:
			// Batch responses: deliver each response sub-message to its
			// waiter individually, so segmentation folds per operation.
			it, err := wire.DecodeBatch(frame)
			if err != nil {
				continue
			}
			for {
				msg, ok := it.Next()
				if !ok {
					break
				}
				t, err := wire.PeekType(msg)
				if err != nil {
					continue
				}
				if t == wire.MsgFetchDesc {
					if d, err := wire.DecodeFetchDesc(msg); err == nil {
						m.deliver(d.ID, msg)
					}
					continue
				}
				if t != wire.MsgResponse {
					continue
				}
				if resp, err := wire.DecodeResponse(msg); err == nil {
					m.deliver(resp.ID, msg)
				}
			}
		}
	}
}

// deliver hands a copy of the frame to the waiter registered for id.
func (m *Mux) deliver(id uint64, frame []byte) {
	cp := append([]byte(nil), frame...)
	m.mu.Lock()
	w, ok := m.waiters[id]
	m.mu.Unlock()
	if ok {
		w.push(cp)
	}
}

// waiter is an unbounded frame queue with channel-like semantics: push
// never blocks (the read loop must not stall on a slow consumer), recv
// blocks until a frame or close, and a closed drained waiter reports
// !ok like a closed channel.
type waiter struct {
	mu     sync.Mutex
	queue  [][]byte
	closed bool
	sig    chan struct{} // capacity 1: "state changed" doorbell
}

func newWaiter() *waiter {
	return &waiter{sig: make(chan struct{}, 1)}
}

func (w *waiter) push(frame []byte) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.queue = append(w.queue, frame)
	w.mu.Unlock()
	select {
	case w.sig <- struct{}{}:
	default:
	}
}

func (w *waiter) closeW() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	select {
	case w.sig <- struct{}{}:
	default:
	}
}

// recv pops the next frame, blocking until one arrives or the waiter
// closes (then ok is false once the queue drains).
func (w *waiter) recv() ([]byte, bool) {
	for {
		w.mu.Lock()
		if len(w.queue) > 0 {
			frame := w.queue[0]
			w.queue = w.queue[1:]
			w.mu.Unlock()
			return frame, true
		}
		if w.closed {
			w.mu.Unlock()
			return nil, false
		}
		w.mu.Unlock()
		<-w.sig
	}
}

// MuxPool shares a bounded set of multiplexed connections per address:
// Client attachments round-robin over up to MaxConnsPerAddr lazily-dialed
// connections, so any number of logical clients stays under the
// connection cap (the C10K deployment shape: 10k clients, ≤64 conns).
type MuxPool struct {
	maxPerAddr int
	cfg        MuxConfig

	mu    sync.Mutex
	muxes map[string][]*Mux
	next  map[string]int
}

// NewMuxPool returns a pool dialing at most maxPerAddr connections per
// server address (<=0 selects 1).
func NewMuxPool(maxPerAddr int, cfg MuxConfig) *MuxPool {
	if maxPerAddr <= 0 {
		maxPerAddr = 1
	}
	return &MuxPool{
		maxPerAddr: maxPerAddr,
		cfg:        cfg,
		muxes:      make(map[string][]*Mux),
		next:       make(map[string]int),
	}
}

// Mux returns the next connection for addr, dialing while under the
// per-address cap and round-robining afterwards.
func (p *MuxPool) Mux(addr string) (*Mux, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ms := p.muxes[addr]
	if len(ms) < p.maxPerAddr {
		m, err := DialMux(addr, p.cfg)
		if err != nil {
			return nil, err
		}
		p.muxes[addr] = append(ms, m)
		return m, nil
	}
	i := p.next[addr] % len(ms)
	p.next[addr] = i + 1
	return ms[i], nil
}

// Conns reports the number of open connections across all addresses.
func (p *MuxPool) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, ms := range p.muxes {
		n += len(ms)
	}
	return n
}

// Close closes every pooled connection.
func (p *MuxPool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var first error
	for _, ms := range p.muxes {
		for _, m := range ms {
			if err := m.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	p.muxes = make(map[string][]*Mux)
	return first
}

// Client attaches a logical client to one of the pool's connections for
// addr. The client does not own the connection; closing it only detaches
// the stream (close the pool to drop the connections).
func (p *MuxPool) Client(addr string, cfg ClientConfig) (*Client, error) {
	m, err := p.Mux(addr)
	if err != nil {
		return nil, err
	}
	return m.Client(cfg)
}

// deadlineUS converts the configured per-request latency budget to the
// wire's microsecond word (relative, so no clock sync is required).
func deadlineUS(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	us := d / time.Microsecond
	if us < 1 {
		us = 1
	}
	if us > 1<<32-1 {
		us = 1<<32 - 1
	}
	return uint32(us)
}
