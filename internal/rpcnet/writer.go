package rpcnet

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrWriterFull reports a non-blocking enqueue against a full writer.
var ErrWriterFull = errors.New("rpcnet: connection writer full")

// defaultWriteBuffer bounds the bytes a connWriter may hold before
// enqueuers block (per-connection backpressure).
const defaultWriteBuffer = 1 << 20

// connWriter is a bounded per-connection writer with coalesced flushes:
// producers append length-prefixed frames to a pending buffer and a single
// flusher goroutine writes the accumulated bytes with one net.Conn.Write
// per wakeup, so N queued responses cost one syscall instead of N. The
// bound gives lossless backpressure — enqueue blocks when the peer reads
// slower than the server produces — while tryEnqueue (used by heartbeat
// broadcast) drops instead of blocking.
// txPacer is a shared outbound line-rate budget: every flush reserves the
// wire time its bytes would occupy at the configured rate, serializing the
// budget across all connections of one server (a NIC is one line, however
// many sockets share it). Loopback deployments (bench, tests) use it to
// give each server a real, saturable per-server TX capacity.
type txPacer struct {
	bps  float64
	mu   sync.Mutex
	next time.Time // when the modeled line frees up
}

func newTXPacer(bps float64) *txPacer { return &txPacer{bps: bps} }

// reserve books wire time for n bytes and returns how long the caller
// must sleep (from now) for its transmission to complete on the modeled
// line.
func (p *txPacer) reserve(n int) time.Duration {
	if p == nil || p.bps <= 0 {
		return 0
	}
	d := time.Duration(float64(n) * 8 / p.bps * float64(time.Second))
	p.mu.Lock()
	now := time.Now()
	if p.next.Before(now) {
		p.next = now
	}
	p.next = p.next.Add(d)
	sleep := p.next.Sub(now)
	p.mu.Unlock()
	return sleep
}

type connWriter struct {
	c    net.Conn
	tx   *atomic.Uint64 // server/client-wide outbound byte counter (nil ok)
	max  int
	pace *txPacer // shared outbound budget (nil = unpaced)

	mu       sync.Mutex
	nonEmpty sync.Cond // signals the flusher
	notFull  sync.Cond // signals blocked enqueuers
	pending  []byte    // length-prefixed frames not yet written
	spare    []byte    // recycled flush buffer
	err      error     // sticky first write error
	closed   bool
	done     chan struct{}
}

// newConnWriter starts the flusher. pace, when non-nil, budgets this
// connection's flushes against the shared line rate.
func newConnWriter(c net.Conn, tx *atomic.Uint64, max int, pace *txPacer) *connWriter {
	if max <= 0 {
		max = defaultWriteBuffer
	}
	w := &connWriter{c: c, tx: tx, max: max, pace: pace, done: make(chan struct{})}
	w.nonEmpty.L = &w.mu
	w.notFull.L = &w.mu
	go w.flushLoop()
	return w
}

// enqueue appends one frame, blocking while the buffer is over its bound.
// It returns the writer's sticky error once the connection has failed.
func (w *connWriter) enqueue(payload []byte) error {
	w.mu.Lock()
	for len(w.pending) >= w.max && w.err == nil && !w.closed {
		w.notFull.Wait()
	}
	if err := w.appendLocked(payload); err != nil {
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()
	return nil
}

// tryEnqueue appends one frame without blocking; a full buffer drops the
// frame (best-effort senders like the heartbeat broadcast tolerate loss).
func (w *connWriter) tryEnqueue(payload []byte) error {
	w.mu.Lock()
	if len(w.pending) >= w.max {
		w.mu.Unlock()
		return ErrWriterFull
	}
	err := w.appendLocked(payload)
	w.mu.Unlock()
	return err
}

func (w *connWriter) appendLocked(payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return net.ErrClosed
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	w.pending = append(w.pending, hdr[:]...)
	w.pending = append(w.pending, payload...)
	if w.tx != nil {
		w.tx.Add(uint64(len(payload)) + 4)
	}
	w.nonEmpty.Signal()
	return nil
}

func (w *connWriter) flushLoop() {
	defer close(w.done)
	for {
		w.mu.Lock()
		for len(w.pending) == 0 && !w.closed && w.err == nil {
			w.nonEmpty.Wait()
		}
		if w.err != nil || (w.closed && len(w.pending) == 0) {
			w.mu.Unlock()
			return
		}
		// Swap the pending buffer out and write it unlocked, so producers
		// keep queueing into the spare while the kernel drains this one.
		buf := w.pending
		w.pending = w.spare[:0]
		w.notFull.Broadcast()
		w.mu.Unlock()

		start := time.Now()
		budget := w.pace.reserve(len(buf))
		_, err := w.c.Write(buf)
		if err == nil {
			if slack := budget - time.Since(start); slack > 0 {
				time.Sleep(slack)
			}
		}
		w.mu.Lock()
		w.spare = buf[:0]
		if err != nil && w.err == nil {
			w.err = err
			w.notFull.Broadcast()
		}
		w.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// close stops the writer after draining what it can and waits for the
// flusher to exit. Close the net.Conn first when the peer may have
// stopped reading, so a blocked Write is unstuck. Idempotent.
func (w *connWriter) close() {
	w.mu.Lock()
	w.closed = true
	w.nonEmpty.Broadcast()
	w.notFull.Broadcast()
	w.mu.Unlock()
	<-w.done
}
