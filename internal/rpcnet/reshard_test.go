package rpcnet

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/shard"
	"github.com/catfish-db/catfish/internal/telemetry"
)

// TestNetLiveReshard splits shard 0 onto a freshly started server while a
// router keeps issuing requests: zero failed requests through the prepare,
// commit, adoption, and drain phases; the router converges to the bumped
// map version mid-run; and the final state is equivalent to the tracked
// ground truth.
func TestNetLiveReshard(t *testing.T) {
	const hbInv = 4 * time.Millisecond
	addrs, srvs, m, data := startShardedDeploy(t, 2000, 2, hbInv)
	// Servers need the address table so the committed map can carry it.
	for s, srv := range srvs {
		if err := srv.AdoptShardMap(m, s, addrs); err != nil {
			t.Fatal(err)
		}
	}
	r, err := DialRouter(addrs, RouterConfig{HealthMultiple: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })

	live := make(map[uint64]geo.Rect, len(data))
	for _, e := range data {
		live[e.Ref] = e.Rect
	}
	rng := rand.New(rand.NewSource(41))
	nextRef := uint64(1 << 20)
	churn := func(ops int) {
		t.Helper()
		for i := 0; i < ops; i++ {
			switch roll := rng.Float64(); {
			case roll < 0.5:
				q := randRect(rng, rng.Float64()*0.2)
				if _, _, err := r.Search(q); err != nil {
					t.Fatalf("search failed mid-reshard: %v", err)
				}
			case roll < 0.8:
				e := rtree.Entry{Rect: randRect(rng, 0.01), Ref: nextRef}
				nextRef++
				if err := r.Insert(e.Rect, e.Ref); err != nil {
					t.Fatalf("insert failed mid-reshard: %v", err)
				}
				live[e.Ref] = e.Rect
			default:
				for ref, rect := range live {
					if err := r.Delete(rect, ref); err != nil {
						t.Fatalf("delete failed mid-reshard: %v", err)
					}
					delete(live, ref)
					break
				}
			}
		}
	}

	churn(40)

	// The reshard target starts empty and unsharded; PrepareReshard
	// snapshots shard 0 under one latch hold, streams the peeled half over,
	// and arms the dual-write.
	newSrv, _ := startServer(t, 0, ServerConfig{HeartbeatInterval: hbInv})
	newAddr := newSrv.Addr().String()
	nm, err := srvs[0].PrepareReshard(newAddr)
	if err != nil {
		t.Fatal(err)
	}
	if nm.K() != 3 || nm.Version == m.Version {
		t.Fatalf("successor map K=%d version=%#x (old %#x)", nm.K(), nm.Version, m.Version)
	}
	if got := srvs[0].Stats().ReshardMoved; got == 0 {
		t.Fatal("no entries streamed to the reshard target")
	}

	// Dual-write window: routers still run the old map; writes landing in
	// the peeled cell are mirrored.
	churn(40)

	// The target adopts the committed map (how it joins the deployment),
	// then the old shard publishes it. Shard 1 learns the map too, as the
	// resharding coordinator would arrange.
	newAddrs := append(append([]string(nil), addrs...), newAddr)
	if err := newSrv.AdoptShardMap(nm, nm.K()-1, newAddrs); err != nil {
		t.Fatal(err)
	}
	if _, err := srvs[0].CommitReshard(); err != nil {
		t.Fatal(err)
	}
	if err := srvs[1].AdoptShardMap(nm, 1, newAddrs); err != nil {
		t.Fatal(err)
	}

	// The router must converge to the bumped version mid-run, with every
	// request during the transition succeeding.
	deadline := time.Now().Add(10 * time.Second)
	for r.Map().Version != nm.Version {
		if time.Now().After(deadline) {
			t.Fatalf("router never adopted map %#x (still at %#x)", nm.Version, r.Map().Version)
		}
		churn(5)
		time.Sleep(hbInv)
	}
	if got := r.Stats().MapAdoptions; got != 1 {
		t.Errorf("map adoptions = %d, want 1", got)
	}

	// Both maps are live until the drain: scatters deduplicate the moved
	// entries. After the drain the old shard no longer answers for them.
	churn(40)
	if err := srvs[0].DrainSplit(); err != nil {
		t.Fatal(err)
	}
	churn(40)

	all := geo.Rect{MinX: -1, MaxX: 2, MinY: -1, MaxY: 2}
	items, _, err := r.Search(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(live) {
		t.Fatalf("final scan: %d items, want %d", len(items), len(live))
	}
	for _, it := range items {
		if _, ok := live[it.Ref]; !ok {
			t.Fatalf("final scan returned unexpected ref %d", it.Ref)
		}
		delete(live, it.Ref)
	}
	if len(live) != 0 {
		t.Fatalf("%d live entries missing after reshard", len(live))
	}

	// The new shard actually serves its cell: a probe owned by the new cell
	// answers from the new server.
	if newSrv.Stats().Searches+newSrv.Stats().Inserts == 0 {
		t.Error("reshard target never served a request")
	}
}

// TestNetShardMapIntegrity covers the rejection paths of the versioned,
// checksummed map: a corrupt-checksum map fails DialRouter, and a served
// map that is not a strict successor (same cell count, different version)
// is never adopted mid-run.
func TestNetShardMapIntegrity(t *testing.T) {
	buildData := func(seed int64) ([]rtree.Entry, *shard.Map) {
		t.Helper()
		rng := rand.New(rand.NewSource(seed))
		data := make([]rtree.Entry, 500)
		for i := range data {
			data[i] = rtree.Entry{Rect: randRect(rng, 0.01), Ref: uint64(i)}
		}
		m, err := shard.Build(data, shard.Config{K: 2, MaxInsertEdge: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		return data, m
	}
	serve := func(data []rtree.Entry, m *shard.Map, hbInv time.Duration) []string {
		t.Helper()
		assign := m.Assign(data)
		addrs := make([]string, m.K())
		for s := 0; s < m.K(); s++ {
			reg, err := region.New(1<<14, 4096)
			if err != nil {
				t.Fatal(err)
			}
			tree, err := rtree.New(reg, rtree.Config{MaxEntries: 16})
			if err != nil {
				t.Fatal(err)
			}
			if len(assign[s]) > 0 {
				if err := tree.BulkLoad(append([]rtree.Entry(nil), assign[s]...), 0); err != nil {
					t.Fatal(err)
				}
			}
			srv, err := Listen("127.0.0.1:0", tree, ServerConfig{
				HeartbeatInterval: hbInv,
				ShardMap:          m,
				ShardIndex:        s,
			})
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve() //nolint:errcheck // returns on Close
			t.Cleanup(func() { srv.Close() })
			addrs[s] = srv.Addr().String()
		}
		return addrs
	}

	t.Run("corrupt-checksum", func(t *testing.T) {
		data, m := buildData(51)
		bad := *m
		bad.Version ^= 0xdeadbeef // content no longer hashes to the header
		addrs := serve(data, &bad, 0)
		_, err := DialRouter(addrs, RouterConfig{})
		if !errors.Is(err, shard.ErrVersionMismatch) {
			t.Fatalf("corrupt map accepted: err = %v, want ErrVersionMismatch", err)
		}
		// The sim router rejects the same corruption at construction.
		if _, err := shard.NewRouter(shard.RouterConfig{Map: &bad}); !errors.Is(err, shard.ErrVersionMismatch) {
			t.Fatalf("sim router accepted corrupt map: err = %v", err)
		}
	})

}

// TestNetStaleMapNotAdopted drops a same-K map with a different version
// into a running deployment and verifies the router never adopts it: the
// version changed but the cell count did not grow, so it is not a reshard
// successor.
func TestNetStaleMapNotAdopted(t *testing.T) {
	const hbInv = 4 * time.Millisecond
	addrs, srvs, m, _ := startShardedDeploy(t, 1000, 2, hbInv)
	r, err := DialRouter(addrs, RouterConfig{HealthMultiple: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })

	// A structurally valid map with the same cell count but another
	// version: rebuilt from different data.
	rng := rand.New(rand.NewSource(61))
	other := make([]rtree.Entry, 500)
	for i := range other {
		other[i] = rtree.Entry{Rect: randRect(rng, 0.02), Ref: uint64(i)}
	}
	om, err := shard.Build(other, shard.Config{K: 2, MaxInsertEdge: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if om.Version == m.Version {
		t.Fatal("test needs maps with distinct versions")
	}
	if err := srvs[0].AdoptShardMap(om, 0, nil); err != nil {
		t.Fatal(err)
	}

	// Give the router plenty of heartbeats advertising the stale version;
	// every operation must keep succeeding on the original map.
	deadline := time.Now().Add(20 * hbInv)
	for time.Now().Before(deadline) {
		if _, _, err := r.Search(geo.Rect{MinX: 0, MaxX: 1, MinY: 0, MaxY: 1}); err != nil {
			t.Fatalf("search during stale-map advertisement: %v", err)
		}
		time.Sleep(hbInv / 2)
	}
	if got := r.Map().Version; got != m.Version {
		t.Fatalf("router adopted stale map %#x", got)
	}
	if got := r.Stats().MapAdoptions; got != 0 {
		t.Fatalf("map adoptions = %d, want 0", got)
	}
}

// TestNetAvailabilityMetrics asserts the §5.11 observability surface: the
// per-shard liveness gauge, the skipped-search and promotion counters on
// the client scrape, and replication lag plus the resharding state machine
// on the server scrape.
func TestNetAvailabilityMetrics(t *testing.T) {
	const hbInv = 4 * time.Millisecond
	cliReg := telemetry.NewRegistry()
	addrs, backups, srvs, _, _ := startReplicatedDeploy(t, 1000, 2, 2, hbInv)
	r, err := DialRouter(addrs, RouterConfig{
		Client:         ClientConfig{Metrics: cliReg},
		HealthMultiple: 3,
		Backups:        backups,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	if _, _, err := r.Search(geo.Rect{MinX: 0, MaxX: 1, MinY: 0, MaxY: 1}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := cliReg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"catfish_shard_healthy",
		"catfish_shard_skipped_searches_total",
		"catfish_router_promotions_total",
		"catfish_router_backup_reads_total",
		"catfish_router_map_adoptions_total",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("client scrape missing %s", name)
		}
	}
	if !strings.Contains(out, `shard="0"`) || !strings.Contains(out, `shard="1"`) {
		t.Error("healthy gauge not labelled per shard")
	}
	if !strings.Contains(out, "catfish_shard_healthy{shard=\"0\"} 1") {
		t.Errorf("healthy shard 0 gauge not 1; scrape:\n%s", out)
	}

	// Server side: a replicated primary with a registry exposes lag and the
	// reshard state machine. Write through it so the repl counters move.
	srvReg := telemetry.NewRegistry()
	reg2, err := region.New(1<<12, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tree2, err := rtree.New(reg2, rtree.Config{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	prim, err := Listen("127.0.0.1:0", tree2, ServerConfig{
		Replica: &ReplicaConfig{Primary: true, Backups: []string{srvs[0][1].Addr().String()}},
		Metrics: srvReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	go prim.Serve() //nolint:errcheck // returns on Close
	t.Cleanup(func() { prim.Close() })
	pc := dial(t, prim, ClientConfig{})
	// The backup belongs to another shard's stream, so this ship is fenced
	// or rejected — irrelevant: only the metric surface is under test, and
	// even a failed ship renders the gauges.
	_ = pc.Insert(geo.Rect{MinX: 0.1, MaxX: 0.11, MinY: 0.1, MaxY: 0.11}, 7)

	buf.Reset()
	if err := srvReg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, name := range []string{
		"catfish_server_repl_lag",
		"catfish_server_promotions_total",
		"catfish_server_repl_records_total",
		"catfish_server_repl_shipped_total",
		"catfish_server_reshard_moved_total",
		"catfish_server_reshard_state",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("server scrape missing %s", name)
		}
	}
}
