package rpcnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/scenario"
	"github.com/catfish-db/catfish/internal/wire"
)

// moveStep is one scripted geo-serving op: a MOVE (possibly of an entry the
// deployment has never seen — the upsert case) or a window search probing
// the state between moves.
type moveStep struct {
	search   bool
	q        geo.Rect
	from, to geo.Rect
	ref      uint64
}

// genMoveScript drives a moving-objects fleet through ticks, interleaving
// each tick's MOVEs with window searches, and sprinkles in moves of
// never-seeded refs to exercise the upsert degradation.
func genMoveScript(rng *rand.Rand, fleet *scenario.MovingObjects, ticks int) []moveStep {
	var steps []moveStep
	for tick := 0; tick < ticks; tick++ {
		for _, mv := range fleet.Tick(rng, nil) {
			steps = append(steps, moveStep{from: mv.From, to: mv.To, ref: mv.Ref})
			if rng.Float64() < 0.3 {
				steps = append(steps, moveStep{search: true, q: randRect(rng, 0.15)})
			}
		}
		// An unseeded object phones in: MOVE must degrade to insert exactly
		// like the tolerated-delete+insert pair does.
		ghost := uint64(1<<40) + uint64(tick)
		pos := scenario.NewMovingObjects(rng, scenario.MovingConfig{N: 1, RefBase: ghost})
		steps = append(steps, moveStep{from: pos.Rect(0), to: pos.Rect(0), ref: ghost})
	}
	return steps
}

// applyMoveScript replays the script on conn, expressing each position
// update in the requested dialect, and returns the sorted refs of every
// search step (non-search steps nil).
func applyMoveScript(t *testing.T, conn Conn, steps []moveStep, dialect string) [][]uint64 {
	t.Helper()
	out := make([][]uint64, len(steps))
	var batch []BatchOp
	var idx []int
	var results []BatchResult
	flush := func() {
		if len(batch) == 0 {
			return
		}
		results = conn.ExecBatch(batch, results)
		for j, res := range results {
			if res.Err != nil {
				t.Fatalf("batched op %d: %v", idx[j], res.Err)
			}
			if batch[j].Type == wire.MsgSearch {
				out[idx[j]] = sortedRefSet(res.Items)
			}
		}
		batch, idx = batch[:0], idx[:0]
	}
	for i, st := range steps {
		switch {
		case st.search && dialect == "batched-move":
			batch = append(batch, BatchOp{Type: wire.MsgSearch, Rect: st.q})
			idx = append(idx, i)
			if len(batch) >= 8 {
				flush()
			}
		case st.search:
			items, _, err := conn.Search(st.q)
			if err != nil {
				t.Fatalf("step %d search: %v", i, err)
			}
			out[i] = sortedRefSet(items)
		case dialect == "move":
			if err := conn.Move(st.from, st.to, st.ref); err != nil {
				t.Fatalf("step %d move: %v", i, err)
			}
		case dialect == "del+ins":
			if err := conn.Delete(st.from, st.ref); err != nil && !errors.Is(err, ErrNotFound) {
				t.Fatalf("step %d delete: %v", i, err)
			}
			if err := conn.Insert(st.to, st.ref); err != nil {
				t.Fatalf("step %d insert: %v", i, err)
			}
		case dialect == "batched-move":
			// Flush at a bounded size, and never let one batch carry two
			// moves of the same ref: a cross-owner link of a move chain is
			// not ordered against the batch's deferred same-owner sub-ops
			// (see the ExecBatch MsgMove ordering note).
			batch = append(batch, BatchOp{Type: wire.MsgMove, Rect: st.from, Rect2: st.to, Ref: st.ref})
			idx = append(idx, i)
			if len(batch) >= 8 {
				flush()
			}
		}
	}
	flush()
	return out
}

// fullScan sorts every item a whole-plane search returns.
func fullScan(t *testing.T, conn Conn) []uint64 {
	t.Helper()
	items, _, err := conn.Search(geo.Rect{MinX: -1, MaxX: 2, MinY: -1, MaxY: 2})
	if err != nil {
		t.Fatal(err)
	}
	return sortedRefSet(items)
}

// TestNetMoveEquivalence checks the PR's core randomized-equivalence claim
// on the real-socket transport: the same scripted MOVE stream produces
// byte-identical search results whether it is expressed as MOVE ops,
// batched MOVE ops, or tolerated-delete+insert pairs — on a plain server, a
// 3-shard deployment (cross-boundary moves included), and a 2-shard R=2
// replicated deployment.
func TestNetMoveEquivalence(t *testing.T) {
	const hbInv = 4 * time.Millisecond
	dialects := []string{"move", "del+ins", "batched-move"}
	shapes := []struct {
		name string
		mk   func(t *testing.T) Conn
	}{
		{"plain", func(t *testing.T) Conn {
			srv, _ := startServer(t, 800, ServerConfig{HeartbeatInterval: hbInv})
			c, err := Connect([]string{srv.Addr().String()})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			return c
		}},
		{"sharded-3", func(t *testing.T) Conn {
			addrs, _, _, _ := startShardedDeploy(t, 800, 3, hbInv)
			c, err := Connect(addrs, WithSeed(7))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			return c
		}},
		{"replicated-2x2", func(t *testing.T) Conn {
			addrs, backups, _, _, _ := startReplicatedDeploy(t, 800, 2, 2, hbInv)
			c, err := Connect(addrs, WithSeed(7), WithBackups(backups))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			return c
		}},
	}
	for _, shape := range shapes {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			// The script moves refs disjoint from both deployments' seeded
			// datasets (fleet refs start at 1<<30), so every arm sees the
			// identical upsert-then-track history.
			script := genMoveScript(
				rand.New(rand.NewSource(5)),
				scenario.NewMovingObjects(rand.New(rand.NewSource(5)), scenario.MovingConfig{
					N: 24, Speed: 0.2, RefBase: 1 << 30,
				}),
				6)
			var wantSearches [][]uint64
			var wantScan []uint64
			for di, dialect := range dialects {
				conn := shape.mk(t)
				searches := applyMoveScript(t, conn, script, dialect)
				scan := fullScan(t, conn)
				if di == 0 {
					wantSearches, wantScan = searches, scan
					continue
				}
				if !equalRefs(scan, wantScan) {
					t.Fatalf("%s: final scan diverged from %s (%d vs %d refs)",
						dialect, dialects[0], len(scan), len(wantScan))
				}
				// Batched interleaving reorders searches inside a flight, so
				// mid-stream probes are only comparable between the two
				// unbatched dialects.
				if dialect == "del+ins" {
					for i := range searches {
						if !equalRefs(searches[i], wantSearches[i]) {
							t.Fatalf("del+ins: search step %d diverged from move dialect", i)
						}
					}
				}
			}
		})
	}
}

// TestNetKNNMatchesLocal checks the remote-kNN equivalence claim: Nearest
// over the wire — fast messaging, the fetch path, and the sharded
// best-first gather — reproduces a local rtree.Tree.Nearest exactly,
// including queries whose k-set straddles shard boundaries.
func TestNetKNNMatchesLocal(t *testing.T) {
	const hbInv = 4 * time.Millisecond
	const n = 2000
	check := func(t *testing.T, conn Conn, ref *rtree.Tree) {
		t.Helper()
		rng := rand.New(rand.NewSource(17))
		for q := 0; q < 120; q++ {
			k := []int{1, 5, 32}[q%3]
			x, y := rng.Float64(), rng.Float64()
			got, _, err := conn.Nearest(k, x, y)
			if err != nil {
				t.Fatalf("query %d: %v", q, err)
			}
			want, _, err := ref.Nearest(k, x, y)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("query %d at (%g, %g): %d neighbors, want %d", q, x, y, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("query %d at (%g, %g): neighbor %d = %+v, want %+v", q, x, y, i, got[i], want[i])
				}
			}
		}
	}
	refTree := func(t *testing.T, data []rtree.Entry) *rtree.Tree {
		t.Helper()
		reg, err := region.New(1<<14, 4096)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := rtree.New(reg, rtree.Config{MaxEntries: 16})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.BulkLoad(append([]rtree.Entry(nil), data...), 0); err != nil {
			t.Fatal(err)
		}
		return tree
	}
	for _, forced := range []Method{MethodFast, MethodFetch} {
		forced := forced
		t.Run("single-"+forced.String(), func(t *testing.T) {
			srv, tree := startServer(t, n, ServerConfig{HeartbeatInterval: hbInv, FetchSlots: 8})
			c, err := Connect([]string{srv.Addr().String()}, WithForced(forced))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			check(t, c, tree)
		})
	}
	t.Run("sharded-3", func(t *testing.T) {
		addrs, _, _, data := startShardedDeploy(t, n, 3, hbInv)
		c, err := Connect(addrs, WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		check(t, c, refTree(t, data))
	})
	t.Run("sharded-3-batched", func(t *testing.T) {
		addrs, _, _, data := startShardedDeploy(t, n, 3, hbInv)
		c, err := Connect(addrs, WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		ref := refTree(t, data)
		rng := rand.New(rand.NewSource(19))
		for round := 0; round < 20; round++ {
			ops := make([]BatchOp, 6)
			type qp struct{ x, y float64 }
			pts := make([]qp, len(ops))
			for i := range ops {
				pts[i] = qp{rng.Float64(), rng.Float64()}
				ops[i] = BatchOp{Type: wire.MsgKNN, Rect: geo.PointRect(pts[i].x, pts[i].y), Ref: 5}
			}
			results := c.ExecBatch(ops, nil)
			for i, res := range results {
				if res.Err != nil {
					t.Fatalf("round %d op %d: %v", round, i, res.Err)
				}
				want, _, err := ref.Nearest(5, pts[i].x, pts[i].y)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Items) != len(want) {
					t.Fatalf("round %d op %d: %d items, want %d", round, i, len(res.Items), len(want))
				}
				for j, it := range res.Items {
					if it.Ref != want[j].Ref || it.Rect != want[j].Rect {
						t.Fatalf("round %d op %d item %d: {%v %d}, want {%v %d}",
							round, i, j, it.Rect, it.Ref, want[j].Rect, want[j].Ref)
					}
				}
			}
		}
	})
}

// TestNetScenarioHammer runs the full geo-serving mix — concurrent MOVEs,
// window searches, and kNN queries — against a 3-shard deployment from
// many goroutines at once. Its job is to give the race detector something
// to chew on across the new MOVE/kNN paths (CI runs this package under
// -race); correctness here is only "no errors, sane result shapes".
func TestNetScenarioHammer(t *testing.T) {
	const hbInv = 4 * time.Millisecond
	addrs, _, _, _ := startShardedDeploy(t, 1500, 3, hbInv)
	const loaders = 8
	ops := 150
	if testing.Short() {
		ops = 40
	}
	var wg sync.WaitGroup
	errCh := make(chan error, loaders)
	for li := 0; li < loaders; li++ {
		li := li
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Connect(addrs, WithSeed(int64(li)))
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(100 + li)))
			fleet := scenario.NewMovingObjects(rng, scenario.MovingConfig{
				N: 16, Speed: 0.05, RefBase: uint64(1<<30) + uint64(li)<<20,
			})
			var pending []scenario.Move
			for i := 0; i < ops; i++ {
				switch rng.Intn(3) {
				case 0:
					if len(pending) == 0 {
						pending = fleet.Tick(rng, pending)
					}
					mv := pending[len(pending)-1]
					pending = pending[:len(pending)-1]
					if err := c.Move(mv.From, mv.To, mv.Ref); err != nil {
						errCh <- fmt.Errorf("loader %d move: %w", li, err)
						return
					}
				case 1:
					if _, _, err := c.Search(randRect(rng, 0.05)); err != nil {
						errCh <- fmt.Errorf("loader %d search: %w", li, err)
						return
					}
				default:
					nbrs, _, err := c.Nearest(4, rng.Float64(), rng.Float64())
					if err != nil {
						errCh <- fmt.Errorf("loader %d knn: %w", li, err)
						return
					}
					if len(nbrs) != 4 {
						errCh <- fmt.Errorf("loader %d knn returned %d of 4", li, len(nbrs))
						return
					}
					for j := 1; j < len(nbrs); j++ {
						if nbrs[j].DistSq < nbrs[j-1].DistSq {
							errCh <- fmt.Errorf("loader %d knn results out of order", li)
							return
						}
					}
				}
			}
			errCh <- nil
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
}
