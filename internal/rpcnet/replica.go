// Shard replication, failover, and live resharding over real TCP
// (DESIGN.md §5.11).
//
// Replication is synchronous: a primary applies a write under the exclusive
// tree latch, stamps it with (epoch, seq) from its replica.State, appends it
// to the op-log, and streams it to every backup session before the latch
// drops and the client sees an acknowledgement. An acknowledged write is
// therefore already applied on every live backup, so promoting one after a
// primary failure loses nothing. The dirty-chunk tracker coalesces the
// chunks each mutation touched into merged spans — the write schedule an
// RDMA transport would post as one-sided span writes; over TCP the record
// itself carries the mutation and the spans feed telemetry.
//
// Fencing: every record carries the primary's epoch. A promoted backup is
// at a higher epoch, so a deposed primary's stream comes back StatusFenced;
// it demotes itself and fails the in-flight client write with the same
// status. Gaps (a backup that missed records after a resend race) come back
// StatusError with the backup's applied sequence; the primary re-sends the
// op-log suffix once.
//
// Live resharding is a three-step state machine: PrepareReshard snapshots
// the shard under the exclusive latch, computes the successor map by
// splitting this shard's cell, streams the entries the new cell owns to the
// new server, and arms dual-writes; CommitReshard publishes the successor
// map (hello, heartbeats, and MsgShardMap all serve it, so routers adopt it
// mid-run); DrainSplit deletes the moved entries locally once routers have
// converged. Requests block (not fail) during the prepare hold, and the old
// server keeps answering for the moved region until the drain, so no window
// exists in which either an old-map or a new-map router can miss data.
package rpcnet

import (
	"errors"
	"fmt"
	"math"
	"net"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/replica"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/shard"
	"github.com/catfish-db/catfish/internal/wire"
)

// ReplicaConfig arms shard replication on a server.
type ReplicaConfig struct {
	// Primary makes this server accept client writes and stream them to
	// Backups; false starts it as a backup that rejects client writes with
	// StatusNotPrimary until promoted.
	Primary bool
	// Backups lists the addresses this primary replicates to (ignored on a
	// backup). Sessions are dialed lazily on the first write.
	Backups []string
	// Epoch is the shard's starting replication epoch (0 selects 1). All
	// replicas of a shard must start at the same epoch.
	Epoch uint64
	// AckTimeout bounds one replication exchange (0 selects 2s). A backup
	// that misses it is dropped from the stream.
	AckTimeout time.Duration
}

const defaultAckTimeout = 2 * time.Second

// replSess is one primary→backup replication session: a dedicated
// connection (the backup's hello and heartbeat pushes are skipped when
// reading acks) plus the backup's acknowledged high-water mark. Guarded by
// Server.replMu.
type replSess struct {
	addr  string
	conn  net.Conn
	acked uint64 // highest sequence the backup acknowledged
	dead  bool   // dropped after a transport error or a stuck gap
}

func (s *Server) ackTimeout() time.Duration {
	if s.cfg.Replica != nil && s.cfg.Replica.AckTimeout > 0 {
		return s.cfg.Replica.AckTimeout
	}
	return defaultAckTimeout
}

// ensureSessions dials the configured backups once, lazily. Callers hold
// replMu. A backup that cannot be dialed is recorded dead; replication
// degrades rather than blocking writes forever.
func (s *Server) ensureSessions() {
	if s.replDialed {
		return
	}
	s.replDialed = true
	for _, addr := range s.cfg.Replica.Backups {
		sess := &replSess{addr: addr}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			sess.dead = true
		} else {
			sess.conn = conn
		}
		s.replSess = append(s.replSess, sess)
	}
}

// closeReplSessions tears down the backup stream on Close.
func (s *Server) closeReplSessions() {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	for _, sess := range s.replSess {
		if sess.conn != nil {
			sess.conn.Close()
		}
	}
}

// replicate stamps one applied mutation, appends it to the op-log, and
// streams it to every live backup. The caller holds the exclusive tree
// latch, so sequence order matches apply order and the client's
// acknowledgement cannot outrun the backups. A fenced stream (a backup was
// promoted above us) is the only error surfaced: the deposed primary must
// fail the client write.
func (s *Server) replicate(op wire.MsgType, rect geo.Rect, ref uint64) error {
	epoch, seq, err := s.repl.Next()
	if err != nil {
		return err
	}
	rec := replica.Record{Epoch: epoch, Seq: seq, Op: op, Rect: rect, Ref: ref}
	s.rlog.Append(rec)
	return s.ship([]replica.Record{rec})
}

// ship streams records to every live backup session, in sequence order
// (replMu serializes senders). Dirty chunks accumulated since the last ship
// are drained into merged spans for the telemetry counters.
func (s *Server) ship(recs []replica.Record) error {
	if len(recs) == 0 {
		return nil
	}
	s.replMu.Lock()
	defer s.replMu.Unlock()
	s.ensureSessions()
	if s.dirty != nil {
		spans := s.dirty.TakeSpans()
		s.replSpans.Add(uint64(len(spans)))
		for _, sp := range spans {
			s.replSpanCh.Add(uint64(sp.Count))
		}
	}
	wr := make([]wire.ReplRecord, len(recs))
	for i, r := range recs {
		wr[i] = r.Wire()
	}
	var fenced error
	for _, sess := range s.replSess {
		if sess.dead {
			continue
		}
		if err := s.shipTo(sess, wr, recs[len(recs)-1].Seq); err != nil {
			if errors.Is(err, replica.ErrFenced) {
				fenced = err
				continue
			}
			sess.dead = true
		}
	}
	return fenced
}

// shipTo sends one record batch to a backup and folds its ack: OK advances
// the session's high-water mark, Fenced demotes this server, and a gap
// triggers exactly one op-log resend from the backup's applied sequence (a
// second gap marks the session dead — the backup is wedged).
func (s *Server) shipTo(sess *replSess, wr []wire.ReplRecord, lastSeq uint64) error {
	ack, err := s.replExchange(sess, wire.Replicate{ID: lastSeq, Records: wr})
	if err != nil {
		return err
	}
	switch ack.Status {
	case wire.StatusOK:
		sess.acked = ack.AppliedSeq
		s.replShipped.Add(uint64(len(wr)))
		return nil
	case wire.StatusFenced:
		s.repl.Fence(ack.Epoch)
		return fmt.Errorf("%w: backup %s at epoch %d", replica.ErrFenced, sess.addr, ack.Epoch)
	case wire.StatusError:
		s.replResends.Add(1)
		missing := s.rlog.Since(ack.AppliedSeq)
		mw := make([]wire.ReplRecord, len(missing))
		for i, r := range missing {
			mw[i] = r.Wire()
		}
		ack, err = s.replExchange(sess, wire.Replicate{ID: lastSeq, Records: mw})
		if err != nil {
			return err
		}
		switch ack.Status {
		case wire.StatusOK:
			sess.acked = ack.AppliedSeq
			s.replShipped.Add(uint64(len(mw)))
			return nil
		case wire.StatusFenced:
			s.repl.Fence(ack.Epoch)
			return fmt.Errorf("%w: backup %s at epoch %d", replica.ErrFenced, sess.addr, ack.Epoch)
		}
		return fmt.Errorf("rpcnet: backup %s stuck at seq %d after resend", sess.addr, ack.AppliedSeq)
	case wire.StatusUnavailable:
		return fmt.Errorf("rpcnet: backup %s unavailable", sess.addr)
	}
	return fmt.Errorf("rpcnet: unexpected repl ack status %d from %s", ack.Status, sess.addr)
}

// replExchange performs one replicate→ack round trip on a session,
// skipping the hello and heartbeat frames the backup server pushes on the
// same connection.
func (s *Server) replExchange(sess *replSess, msg wire.Replicate) (wire.ReplAck, error) {
	if err := sess.conn.SetDeadline(time.Now().Add(s.ackTimeout())); err != nil {
		return wire.ReplAck{}, err
	}
	defer sess.conn.SetDeadline(time.Time{})
	if err := writeFrame(sess.conn, msg.Encode(nil)); err != nil {
		return wire.ReplAck{}, err
	}
	var buf []byte
	for {
		var err error
		buf, err = readFrame(sess.conn, buf)
		if err != nil {
			return wire.ReplAck{}, err
		}
		typ, err := wire.PeekType(buf)
		if err != nil {
			return wire.ReplAck{}, err
		}
		if typ != wire.MsgReplAck {
			continue // hello or heartbeat push from the backup server
		}
		return wire.DecodeReplAck(buf)
	}
}

// replLag is the replication-lag gauge: the op-log high-water mark minus
// the slowest live backup's acknowledged sequence (0 with no live backups,
// i.e. nothing to lag behind).
func (s *Server) replLag() float64 {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	last := s.rlog.LastSeq()
	min := last
	live := false
	for _, sess := range s.replSess {
		if sess.dead {
			continue
		}
		live = true
		if sess.acked < min {
			min = sess.acked
		}
	}
	if !live {
		return 0
	}
	return float64(last - min)
}

// replStatus maps a replication-path error to the wire status the client
// decodes back into the same replica sentinel.
func replStatus(err error) uint8 {
	switch {
	case errors.Is(err, replica.ErrNotPrimary):
		return wire.StatusNotPrimary
	case errors.Is(err, replica.ErrFenced):
		return wire.StatusFenced
	case errors.Is(err, replica.ErrUnavailable):
		return wire.StatusUnavailable
	}
	return wire.StatusError
}

// handleReplicate applies an incoming record batch on a backup and answers
// with the backup's (epoch, applied) so the primary can detect fencing and
// resume across gaps. Records at or below the applied sequence (resend
// overlap) are skipped silently.
func (s *Server) handleReplicate(sc *srvConn, frame []byte) error {
	msg, err := wire.DecodeReplicate(frame)
	if err != nil {
		return err
	}
	ack := wire.ReplAck{ID: msg.ID, Status: wire.StatusOK}
	if s.repl == nil {
		ack.Status = wire.StatusError
		return sc.send(ack.Encode(nil))
	}
	if s.killed.Load() {
		ack.Status = wire.StatusUnavailable
		ack.Epoch, ack.AppliedSeq = s.repl.Snapshot()
		return sc.send(ack.Encode(nil))
	}
	s.latch.Lock()
	for _, wr := range msg.Records {
		if aerr := s.repl.Accept(wr.Epoch, wr.Seq); aerr != nil {
			var gap *replica.GapError
			if errors.As(aerr, &gap) && gap.Got <= gap.Applied {
				continue // duplicate from a resend overlap
			}
			if errors.Is(aerr, replica.ErrFenced) {
				ack.Status = wire.StatusFenced
			} else {
				ack.Status = wire.StatusError // gap: primary resends from AppliedSeq
			}
			break
		}
		rec := replica.FromWire(wr)
		var aerr error
		switch rec.Op {
		case wire.MsgInsert:
			_, aerr = s.tree.Insert(rec.Rect, rec.Ref)
		case wire.MsgDelete:
			_, _, aerr = s.tree.Delete(rec.Rect, rec.Ref)
		default:
			aerr = fmt.Errorf("rpcnet: replicated op %d", rec.Op)
		}
		if aerr != nil {
			ack.Status = wire.StatusError
			break
		}
		s.rlog.Append(rec)
		s.replRecords.Add(1)
	}
	s.latch.Unlock()
	ack.Epoch, ack.AppliedSeq = s.repl.Snapshot()
	return sc.send(ack.Encode(nil))
}

// Live resharding phases, exposed on catfish_server_reshard_state.
const (
	reshardIdle      int64 = 0
	reshardDualWrite int64 = 1
	reshardCommitted int64 = 2
)

// splitState is an armed reshard: the successor map, the new cell's index,
// and the session writes are mirrored on until the drain.
type splitState struct {
	m       *shard.Map
	newIdx  int
	newAddr string
	cli     *Client
}

// reshardBatch is the entry-stream granularity of PrepareReshard.
const reshardBatch = 128

// everything covers the whole plane for snapshot scans.
var everything = geo.Rect{
	MinX: math.Inf(-1), MinY: math.Inf(-1),
	MaxX: math.Inf(1), MaxY: math.Inf(1),
}

// PrepareReshard splits this shard's cell in two and streams the entries
// the new cell owns to the server at newAddr, all under one exclusive latch
// hold so no concurrent write can slip between the snapshot and the
// dual-write arming. On return the successor map exists but is not yet
// served: client requests arriving during the hold blocked on the latch and
// then completed against the old map, and every subsequent write that lands
// in the new cell is mirrored to the new server. Call CommitReshard to
// publish the map and DrainSplit once routers have converged.
func (s *Server) PrepareReshard(newAddr string) (*shard.Map, error) {
	sm := s.servedShardMap()
	if sm == nil {
		return nil, errors.New("rpcnet: reshard on an unsharded server")
	}
	if len(sm.addrs) != sm.m.K() {
		return nil, errors.New("rpcnet: reshard needs the shard address table")
	}
	if s.killed.Load() {
		return nil, replica.ErrUnavailable
	}
	if s.split.Load() != nil {
		return nil, errors.New("rpcnet: reshard already in progress")
	}
	cli, err := Dial(newAddr, ClientConfig{})
	if err != nil {
		return nil, err
	}
	s.latch.Lock()
	defer s.latch.Unlock()
	var entries []rtree.Entry
	if _, err := s.tree.SearchShared(everything, func(r geo.Rect, ref uint64) bool {
		entries = append(entries, rtree.Entry{Rect: r, Ref: ref})
		return true
	}); err != nil {
		cli.Close()
		return nil, err
	}
	nm, err := sm.m.SplitCell(int(s.shardIdx.Load()), entries)
	if err != nil {
		cli.Close()
		return nil, err
	}
	newIdx := nm.K() - 1
	var ops []BatchOp
	var results []BatchResult
	var moved uint64
	flush := func() error {
		if len(ops) == 0 {
			return nil
		}
		results = cli.ExecBatch(ops, results)
		for _, r := range results {
			if r.Err != nil {
				return r.Err
			}
		}
		moved += uint64(len(ops))
		ops = ops[:0]
		return nil
	}
	for _, e := range entries {
		if nm.Owner(e.Rect) != newIdx {
			continue
		}
		ops = append(ops, BatchOp{Type: wire.MsgInsert, Rect: e.Rect, Ref: e.Ref})
		if len(ops) == reshardBatch {
			if err := flush(); err != nil {
				cli.Close()
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		cli.Close()
		return nil, err
	}
	s.reshardMoved.Add(moved)
	s.split.Store(&splitState{m: nm, newIdx: newIdx, newAddr: newAddr, cli: cli})
	s.reshardPhase.Store(reshardDualWrite)
	return nm, nil
}

// forwardSplit mirrors one applied write to the reshard target when a split
// is armed and the successor map assigns the rect to the new cell. Called
// under the exclusive latch, after local apply and replication — the
// dual-write keeps the new server exact while both maps are live. A delete
// the new server never saw (inserted before the snapshot, moved by it) is
// not an error.
func (s *Server) forwardSplit(op wire.MsgType, rect geo.Rect, ref uint64) error {
	sp := s.split.Load()
	if sp == nil || sp.m.Owner(rect) != sp.newIdx {
		return nil
	}
	switch op {
	case wire.MsgInsert:
		return sp.cli.Insert(rect, ref)
	case wire.MsgDelete:
		if err := sp.cli.Delete(rect, ref); err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
	}
	return nil
}

// CommitReshard publishes the prepared successor map: the hello, heartbeat
// MapVersion, and MsgShardMap responses all switch to it, so routers
// observe the version bump and adopt the new map (and dial the new shard)
// mid-run. The moved entries stay on this server — dual-written — until
// DrainSplit, so routers still on the old map lose nothing.
func (s *Server) CommitReshard() (*shard.Map, error) {
	sp := s.split.Load()
	if sp == nil {
		return nil, errors.New("rpcnet: no reshard prepared")
	}
	sm := s.servedShardMap()
	addrs := append(append([]string(nil), sm.addrs...), sp.newAddr)
	s.served.Store(&servedMap{m: sp.m, addrs: addrs})
	s.reshardPhase.Store(reshardCommitted)
	return sp.m, nil
}

// DrainSplit ends the dual-write window: the entries the new cell owns are
// deleted locally (replicated to this shard's backups like any other
// write, so a later failover does not resurrect them) and the mirror
// session closes. Call only after every router has adopted the committed
// map; until then this server must keep answering for the moved region.
func (s *Server) DrainSplit() error {
	sp := s.split.Swap(nil)
	if sp == nil {
		return nil
	}
	s.latch.Lock()
	var doomed []rtree.Entry
	_, err := s.tree.SearchShared(everything, func(r geo.Rect, ref uint64) bool {
		if sp.m.Owner(r) == sp.newIdx {
			doomed = append(doomed, rtree.Entry{Rect: r, Ref: ref})
		}
		return true
	})
	if err == nil {
		for _, e := range doomed {
			if _, _, derr := s.tree.Delete(e.Rect, e.Ref); derr != nil {
				err = derr
				break
			}
			if s.repl != nil && s.repl.Primary() {
				// Best effort: a fenced stream here means we were deposed
				// mid-drain; the new primary re-drains from its own state.
				_ = s.replicate(wire.MsgDelete, e.Rect, e.Ref)
			}
		}
	}
	s.latch.Unlock()
	s.reshardPhase.Store(reshardIdle)
	if cerr := sp.cli.Close(); err == nil {
		err = cerr
	}
	return err
}

// AdoptShardMap installs a shard identity on a running server — how the
// reshard target joins the deployment: it starts unsharded, receives the
// committed successor map, and begins advertising it so routers that
// bootstrap from it (or cross-check hellos) see a consistent view.
func (s *Server) AdoptShardMap(m *shard.Map, idx int, addrs []string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if idx < 0 || idx >= m.K() {
		return fmt.Errorf("rpcnet: adopt shard %d of %d", idx, m.K())
	}
	if len(addrs) != 0 && len(addrs) != m.K() {
		return fmt.Errorf("rpcnet: adopt with %d addrs for %d shards", len(addrs), m.K())
	}
	s.shardIdx.Store(int32(idx))
	s.served.Store(&servedMap{m: m, addrs: addrs})
	return nil
}
