package btree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"github.com/catfish-db/catfish/internal/region"
)

func newTestTree(t testing.TB, nchunks, maxEntries int) *Tree {
	t.Helper()
	reg, err := region.New(nchunks, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(reg, Config{MaxEntries: maxEntries})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestNewValidation(t *testing.T) {
	reg, err := region.New(4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(reg, Config{MaxEntries: 2}); err == nil {
		t.Error("tiny MaxEntries should fail")
	}
	reg2, _ := region.New(4, 4096)
	if _, err := New(reg2, Config{MaxEntries: 10_000}); err == nil {
		t.Error("over-capacity MaxEntries should fail")
	}
	reg3, _ := region.New(4, 4096)
	tree, err := New(reg3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.MaxEntries() != 223 {
		t.Errorf("default MaxEntries = %d, want 223 (4 KB chunk)", tree.MaxEntries())
	}
}

func TestEmptyTree(t *testing.T) {
	tree := newTestTree(t, 8, 8)
	if _, err := tree.Get(5); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get on empty = %v", err)
	}
	if err := tree.Delete(5); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete on empty = %v", err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertGetBasic(t *testing.T) {
	tree := newTestTree(t, 64, 8)
	for k := uint64(1); k <= 20; k++ {
		if err := tree.Insert(k*10, k); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != 20 {
		t.Errorf("Len = %d", tree.Len())
	}
	for k := uint64(1); k <= 20; k++ {
		v, err := tree.Get(k * 10)
		if err != nil || v != k {
			t.Fatalf("Get(%d) = %d, %v", k*10, v, err)
		}
	}
	if _, err := tree.Get(5); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key err = %v", err)
	}
	if err := tree.Insert(100, 1); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate insert err = %v", err)
	}
	if err := tree.Update(100, 777); err != nil {
		t.Fatal(err)
	}
	if v, _ := tree.Get(100); v != 777 {
		t.Errorf("after update Get = %d", v)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSplitsGrowHeight(t *testing.T) {
	tree := newTestTree(t, 256, 8)
	root := tree.RootChunk()
	for k := uint64(0); k < 200; k++ {
		if err := tree.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Height() < 3 {
		t.Errorf("height = %d after 200 sequential inserts with M=8", tree.Height())
	}
	if tree.RootChunk() != root {
		t.Error("root chunk moved")
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeScan(t *testing.T) {
	tree := newTestTree(t, 256, 8)
	for k := uint64(0); k < 100; k++ {
		if err := tree.Insert(k*2, k); err != nil { // even keys 0..198
			t.Fatal(err)
		}
	}
	var got []uint64
	if err := tree.Range(10, 30, func(k, _ uint64) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []uint64{10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	tree.Range(0, 1000, func(uint64, uint64) bool { count++; return count < 5 })
	if count != 5 {
		t.Errorf("early stop count = %d", count)
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	tree := newTestTree(t, 4096, 8)
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(42))
	var keys []uint64
	for step := 0; step < 6000; step++ {
		op := rng.Float64()
		switch {
		case op < 0.55 || len(keys) == 0:
			k := uint64(rng.Intn(10000))
			v := rng.Uint64()
			err := tree.Insert(k, v)
			if _, exists := oracle[k]; exists {
				if !errors.Is(err, ErrExists) {
					t.Fatalf("step %d: dup insert err = %v", step, err)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d: insert: %v", step, err)
				}
				oracle[k] = v
				keys = append(keys, k)
			}
		case op < 0.75:
			i := rng.Intn(len(keys))
			k := keys[i]
			if err := tree.Delete(k); err != nil {
				t.Fatalf("step %d: delete %d: %v", step, k, err)
			}
			delete(oracle, k)
			keys = append(keys[:i], keys[i+1:]...)
		case op < 0.85:
			k := uint64(rng.Intn(10000))
			v, err := tree.Get(k)
			want, exists := oracle[k]
			if exists && (err != nil || v != want) {
				t.Fatalf("step %d: Get(%d) = %d, %v; want %d", step, k, v, err, want)
			}
			if !exists && !errors.Is(err, ErrNotFound) {
				t.Fatalf("step %d: Get(%d) err = %v", step, k, err)
			}
		default:
			lo := uint64(rng.Intn(10000))
			hi := lo + uint64(rng.Intn(500))
			var got []uint64
			if err := tree.Range(lo, hi, func(k, _ uint64) bool {
				got = append(got, k)
				return true
			}); err != nil {
				t.Fatalf("step %d: range: %v", step, err)
			}
			var want []uint64
			for k := range oracle {
				if k >= lo && k <= hi {
					want = append(want, k)
				}
			}
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			if len(got) != len(want) {
				t.Fatalf("step %d: range [%d, %d] got %d keys, want %d", step, lo, hi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d: range order mismatch", step)
				}
			}
		}
		if step%1000 == 999 {
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if tree.Len() != len(oracle) {
				t.Fatalf("step %d: Len %d != oracle %d", step, tree.Len(), len(oracle))
			}
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllReleasesChunks(t *testing.T) {
	tree := newTestTree(t, 1024, 8)
	const n = 500
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, k := range perm {
		if err := tree.Insert(uint64(k), uint64(k)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range rand.New(rand.NewSource(8)).Perm(n) {
		if err := tree.Delete(uint64(k)); err != nil {
			t.Fatalf("delete %d: %v", k, err)
		}
	}
	if tree.Len() != 0 || tree.Height() != 1 {
		t.Errorf("Len=%d Height=%d after deleting all", tree.Len(), tree.Height())
	}
	if got := tree.Region().Allocated(); got != 1 {
		t.Errorf("allocated chunks = %d, want 1 (root)", got)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNodeEncodeDecodeRoundTrip(t *testing.T) {
	n := &Node{Level: 2, Next: -1, Entries: []Entry{{1, 10}, {5, 50}, {9, 90}}}
	var got Node
	if err := DecodeNode(n.Encode(nil), &got, 8); err != nil {
		t.Fatal(err)
	}
	if got.Level != 2 || got.Next != -1 || len(got.Entries) != 3 {
		t.Fatalf("got %+v", got)
	}
	leaf := &Node{Level: 0, Next: 42, Entries: []Entry{{7, 70}}}
	if err := DecodeNode(leaf.Encode(nil), &got, 8); err != nil {
		t.Fatal(err)
	}
	if got.Next != 42 {
		t.Errorf("next = %d", got.Next)
	}
}

func TestDecodeNodeRejectsGarbage(t *testing.T) {
	var n Node
	if err := DecodeNode(nil, &n, 8); !errors.Is(err, ErrCorruptNode) {
		t.Errorf("nil err = %v", err)
	}
	// Unsorted keys mark a stale chunk.
	bad := (&Node{Level: 0, Next: -1, Entries: []Entry{{5, 1}, {3, 2}}}).Encode(nil)
	if err := DecodeNode(bad, &n, 8); !errors.Is(err, ErrCorruptNode) {
		t.Errorf("unsorted err = %v", err)
	}
	big := (&Node{Level: 99}).Encode(nil)
	if err := DecodeNode(big, &n, 8); !errors.Is(err, ErrCorruptNode) {
		t.Errorf("level err = %v", err)
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	reg, err := region.New(b.N/50+4096, 4096)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := New(reg, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(uint64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	tree := newTestTree(b, 8192, 0)
	const n = 100_000
	for i := 0; i < n; i++ {
		if err := tree.Insert(uint64(i)*7, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Get(uint64(i%n) * 7); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDisableCachePathsWork(t *testing.T) {
	reg, err := region.New(2048, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(reg, Config{MaxEntries: 8, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 500; k++ {
		if err := tree.Insert(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 500; k += 31 {
		v, err := tree.Get(k)
		if err != nil || v != k*10 {
			t.Fatalf("uncached get %d = %d, %v", k, v, err)
		}
	}
	for k := uint64(0); k < 500; k += 2 {
		if err := tree.Delete(k); err != nil {
			t.Fatalf("uncached delete %d: %v", k, err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// SetPublisher(nil) restores the default path.
	tree.SetPublisher(nil)
	if err := tree.Insert(10_001, 1); err != nil {
		t.Fatal(err)
	}
}
