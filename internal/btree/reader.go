package btree

import (
	"errors"
	"time"

	"github.com/catfish-db/catfish/internal/nodecache"
	"github.com/catfish-db/catfish/internal/region"
)

// FetchFunc returns the raw image of one region chunk (versions included).
// It is the transport hook: over the simulated fabric it is an RDMA Read,
// over rpcnet a READ_CHUNK request — the Reader neither knows nor cares.
type FetchFunc func(chunkID int) ([]byte, error)

// Reader traverses a remote B+-tree with one-sided chunk reads, validating
// per-cacheline versions and retrying torn reads — the offloading half of
// the Catfish framework applied to a second link-based structure (§VI).
//
// A Reader is not safe for concurrent use.
type Reader struct {
	Fetch      FetchFunc
	RootChunk  int
	MaxEntries int
	// MaxChunkRetries bounds torn-read retries per chunk (0 selects 64);
	// MaxRestarts bounds stale-structure restarts (0 selects 8).
	MaxChunkRetries int
	MaxRestarts     int

	// Cache, when non-nil, holds decoded internal nodes keyed by chunk id
	// and validated by version fingerprint (see internal/nodecache). Leaves
	// are never cached — their churn would thrash the LRU.
	Cache *nodecache.Cache
	// FetchVersions returns the raw version words of one chunk (the
	// version-only read backing cache revalidation). Required for the
	// Verify tier; without it a demoted entry falls back to a full fetch.
	FetchVersions func(chunkID int) ([]byte, error)
	// Now supplies the cache clock (lease expiry). Nil means time zero,
	// which effectively reduces the cache to its Verify tier.
	Now func() time.Duration
	// Charge, when non-nil, is invoked once per cache-served node so the
	// caller can account traversal CPU it would otherwise have charged in
	// Fetch.
	Charge func()

	// TornRetries and StaleRestarts count recovery events; VersionReads
	// counts version-only revalidation reads.
	TornRetries   uint64
	StaleRestarts uint64
	VersionReads  uint64

	node    Node
	payload []byte
}

// Errors.
var (
	ErrGaveUp = errors.New("btree: remote traversal exceeded retry budget")
	errStale  = errors.New("btree: stale node during remote traversal")
)

func (r *Reader) retries() int {
	if r.MaxChunkRetries == 0 {
		return 64
	}
	return r.MaxChunkRetries
}

func (r *Reader) restarts() int {
	if r.MaxRestarts == 0 {
		return 8
	}
	return r.MaxRestarts
}

// fetchNode reads chunk id into r.node with version validation, consulting
// the node cache first when one is configured.
func (r *Reader) fetchNode(id, expectLevel int) error {
	if r.Cache != nil {
		if served, err := r.fetchCached(id, expectLevel); served || err != nil {
			return err
		}
	}
	for retry := 0; retry <= r.retries(); retry++ {
		raw, err := r.Fetch(id)
		if err != nil {
			return err
		}
		payload, ver, derr := region.DecodeChunk(raw, r.payload)
		if derr != nil {
			if errors.Is(derr, region.ErrTornRead) {
				r.TornRetries++
				continue
			}
			return derr
		}
		r.payload = payload
		if err := DecodeNode(payload, &r.node, r.MaxEntries+1); err != nil {
			return errStale // reallocated or mid-rewrite chunk
		}
		if expectLevel >= 0 && r.node.Level != expectLevel {
			return errStale
		}
		if r.Cache != nil && !r.node.IsLeaf() {
			cp := &Node{Level: r.node.Level, Next: r.node.Next,
				Entries: append([]Entry(nil), r.node.Entries...)}
			r.Cache.Put(id, cp, ver, r.now())
		}
		return nil
	}
	return ErrGaveUp
}

func (r *Reader) now() time.Duration {
	if r.Now == nil {
		return 0
	}
	return r.Now()
}

// fetchCached tries to serve chunk id from the node cache: a lease-fresh
// entry directly, a demoted one after a version-only revalidation read. It
// reports served=false when the caller must fall back to a full fetch.
func (r *Reader) fetchCached(id, expectLevel int) (bool, error) {
	copyOut := func(v any) (bool, error) {
		n := v.(*Node)
		if expectLevel >= 0 && n.Level != expectLevel {
			r.Cache.Evict(id)
			return false, errStale
		}
		r.node.Level = n.Level
		r.node.Next = n.Next
		r.node.Entries = append(r.node.Entries[:0], n.Entries...)
		if r.Charge != nil {
			r.Charge()
		}
		return true, nil
	}
	now := r.now()
	v, outcome := r.Cache.Lookup(id, now)
	switch outcome {
	case nodecache.Fresh:
		return copyOut(v)
	case nodecache.Verify:
		if r.FetchVersions == nil {
			return false, nil
		}
		r.VersionReads++
		raw, err := r.FetchVersions(id)
		if err != nil {
			return false, err
		}
		ver, derr := region.DecodeVersions(raw)
		if derr != nil {
			return false, nil // torn window: fall back to a full fetch
		}
		if v2, ok := r.Cache.Confirm(id, ver, now); ok {
			return copyOut(v2)
		}
	}
	return false, nil
}

// Get fetches the value for key from the remote tree.
func (r *Reader) Get(key uint64) (uint64, error) {
	for attempt := 0; attempt <= r.restarts(); attempt++ {
		val, err := r.get(key)
		if !errors.Is(err, errStale) {
			return val, err
		}
		r.Cache.Flush()
		r.StaleRestarts++
	}
	return 0, ErrGaveUp
}

// maxMoveRight bounds the B-link rightward walk at the leaf level before
// the traversal is declared stale and restarted from the root.
const maxMoveRight = 8

func (r *Reader) get(key uint64) (uint64, error) {
	id, level := r.RootChunk, -1
	for {
		if err := r.fetchNode(id, level); err != nil {
			return 0, err
		}
		n := &r.node
		if n.IsLeaf() {
			// B-link move-right: a concurrent split publishes the right
			// sibling before the parent's separator, so a reader that
			// descended through a stale parent may land one or more
			// leaves left of its key and must follow the chain.
			for hop := 0; ; hop++ {
				i := n.search(key)
				if i < len(n.Entries) && n.Entries[i].Key == key {
					return n.Entries[i].Val, nil
				}
				if i < len(n.Entries) || n.Next < 0 {
					// The key would sort inside this leaf (or there is
					// no right sibling): genuinely absent.
					return 0, ErrNotFound
				}
				if hop >= maxMoveRight {
					return 0, errStale
				}
				if err := r.fetchNode(n.Next, 0); err != nil {
					return 0, err
				}
			}
		}
		if len(n.Entries) == 0 {
			return 0, errStale
		}
		id = int(n.Entries[n.childIndex(key)].Val)
		level = n.Level - 1
	}
}

// Range invokes fn for every remote key in [from, to] in ascending order,
// following the leaf chain; fn returning false stops the scan. A stale
// restart resumes after the last delivered key, so fn never sees a key
// twice.
func (r *Reader) Range(from, to uint64, fn func(key, val uint64) bool) error {
	cursor := from
	wrapped := func(key, val uint64) bool {
		if key == ^uint64(0) {
			cursor = key // cannot advance past the maximum key
		} else {
			cursor = key + 1
		}
		return fn(key, val)
	}
	for attempt := 0; attempt <= r.restarts(); attempt++ {
		err := r.scan(cursor, to, wrapped)
		if !errors.Is(err, errStale) {
			return err
		}
		r.Cache.Flush()
		r.StaleRestarts++
	}
	return ErrGaveUp
}

func (r *Reader) scan(from, to uint64, fn func(key, val uint64) bool) error {
	// Descend to the leaf containing from.
	id, level := r.RootChunk, -1
	for {
		if err := r.fetchNode(id, level); err != nil {
			return err
		}
		if r.node.IsLeaf() {
			break
		}
		if len(r.node.Entries) == 0 {
			return errStale
		}
		id = int(r.node.Entries[r.node.childIndex(from)].Val)
		level = r.node.Level - 1
	}
	// Walk the chain. Chain hops must land on leaves; anything else means
	// the structure changed underneath us.
	prev := from
	first := true
	for hop := 0; ; hop++ {
		n := &r.node
		for i := n.search(from); i < len(n.Entries); i++ {
			e := n.Entries[i]
			if e.Key > to {
				return nil
			}
			// Monotonicity guard against stale chains.
			if !first && e.Key <= prev {
				return errStale
			}
			first = false
			prev = e.Key
			if !fn(e.Key, e.Val) {
				return nil
			}
		}
		if n.Next < 0 {
			return nil
		}
		next := n.Next
		if err := r.fetchNode(next, 0); err != nil {
			return err
		}
	}
}
