package btree

import (
	"errors"
	"fmt"

	"github.com/catfish-db/catfish/internal/region"
)

// Publisher writes a node's encoded payload into a region chunk (the same
// hook the R-tree exposes; a Catfish-style server can stage writes through
// it to open torn-read windows).
type Publisher func(chunkID int, payload []byte) error

// Config tunes a Tree.
type Config struct {
	// MaxEntries is the node capacity (0 selects the chunk capacity,
	// capped at 224 — height 3 for tens of millions of keys).
	MaxEntries int
	// Publisher overrides how node payloads reach the region.
	Publisher Publisher
	// DisableCache turns off the server-side decoded-node cache.
	DisableCache bool
}

// ErrExists is returned by Insert when the key is already present.
var ErrExists = errors.New("btree: key already exists")

// Tree is a B+-tree stored node-per-chunk in a memory region. Not safe for
// concurrent use; serialize writers externally (the server's latch).
type Tree struct {
	reg        *region.Region
	publish    Publisher
	maxEntries int
	minEntries int

	rootChunk int
	height    int
	size      int

	cache []*Node

	rawBuf     []byte
	payloadBuf []byte
	encodeBuf  []byte
}

// New creates an empty tree whose nodes live in reg. The root chunk is
// stable for the tree's lifetime (clients cache it, as with the R-tree).
func New(reg *region.Region, cfg Config) (*Tree, error) {
	capacity := NodeCapacity(reg.PayloadSize())
	maxE := cfg.MaxEntries
	if maxE == 0 {
		maxE = capacity
		if maxE > 224 {
			maxE = 224
		}
	}
	if maxE < 4 {
		return nil, fmt.Errorf("btree: MaxEntries %d too small", maxE)
	}
	if maxE > capacity {
		return nil, fmt.Errorf("btree: MaxEntries %d exceeds chunk capacity %d", maxE, capacity)
	}
	pub := cfg.Publisher
	if pub == nil {
		pub = reg.WriteChunkPrefix
	}
	t := &Tree{
		reg:        reg,
		publish:    pub,
		maxEntries: maxE,
		minEntries: maxE / 2,
		height:     1,
		rawBuf:     make([]byte, reg.ChunkSize()),
		payloadBuf: make([]byte, 0, reg.PayloadSize()),
	}
	if !cfg.DisableCache {
		t.cache = make([]*Node, reg.NumChunks())
	}
	root, err := reg.Alloc()
	if err != nil {
		return nil, fmt.Errorf("btree: alloc root: %w", err)
	}
	t.rootChunk = root
	if err := t.writeNode(root, &Node{Level: 0, Next: -1}); err != nil {
		return nil, err
	}
	return t, nil
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// RootChunk returns the stable root chunk ID.
func (t *Tree) RootChunk() int { return t.rootChunk }

// MaxEntries returns the node capacity.
func (t *Tree) MaxEntries() int { return t.maxEntries }

// Region returns the backing region.
func (t *Tree) Region() *region.Region { return t.reg }

// SetPublisher replaces the node publisher (nil restores the default).
func (t *Tree) SetPublisher(pub Publisher) {
	if pub == nil {
		pub = t.reg.WriteChunkPrefix
	}
	t.publish = pub
}

func (t *Tree) readNode(id int) (*Node, error) {
	if t.cache != nil {
		if n := t.cache[id]; n != nil {
			return n, nil
		}
	}
	n, err := t.readNodeRegion(id)
	if err != nil {
		return nil, err
	}
	if t.cache != nil {
		t.cache[id] = n
	}
	return n, nil
}

func (t *Tree) readNodeRegion(id int) (*Node, error) {
	payload, _, err := t.reg.ReadChunk(id, t.rawBuf, t.payloadBuf)
	if err != nil {
		return nil, fmt.Errorf("btree: read chunk %d: %w", id, err)
	}
	t.payloadBuf = payload
	n := &Node{}
	if err := DecodeNode(payload, n, t.maxEntries+1); err != nil {
		return nil, fmt.Errorf("btree: chunk %d: %w", id, err)
	}
	return n, nil
}

func (t *Tree) writeNode(id int, n *Node) error {
	t.encodeBuf = n.Encode(t.encodeBuf)
	if err := t.publish(id, t.encodeBuf); err != nil {
		return fmt.Errorf("btree: publish chunk %d: %w", id, err)
	}
	if t.cache != nil {
		t.cache[id] = n
	}
	return nil
}

func (t *Tree) freeChunk(id int) error {
	if t.cache != nil {
		t.cache[id] = nil
	}
	return t.reg.Free(id)
}

// Get returns the value stored under key.
func (t *Tree) Get(key uint64) (uint64, error) {
	id := t.rootChunk
	for {
		n, err := t.readNode(id)
		if err != nil {
			return 0, err
		}
		if n.IsLeaf() {
			i := n.search(key)
			if i < len(n.Entries) && n.Entries[i].Key == key {
				return n.Entries[i].Val, nil
			}
			return 0, ErrNotFound
		}
		if len(n.Entries) == 0 {
			return 0, ErrNotFound
		}
		id = int(n.Entries[n.childIndex(key)].Val)
	}
}

// path element for root-to-leaf descents.
type pathElem struct {
	id    int
	node  *Node
	child int // index taken within node (internal levels)
}

func (t *Tree) descend(key uint64) ([]pathElem, error) {
	var path []pathElem
	id := t.rootChunk
	for {
		n, err := t.readNode(id)
		if err != nil {
			return nil, err
		}
		pe := pathElem{id: id, node: n}
		if n.IsLeaf() {
			path = append(path, pe)
			return path, nil
		}
		pe.child = n.childIndex(key)
		path = append(path, pe)
		id = int(n.Entries[pe.child].Val)
	}
}

// Insert stores key -> val. It returns ErrExists when the key is present
// (use Update to overwrite).
func (t *Tree) Insert(key, val uint64) error {
	return t.put(key, val, false)
}

// Update stores key -> val, overwriting an existing binding.
func (t *Tree) Update(key, val uint64) error {
	return t.put(key, val, true)
}

func (t *Tree) put(key, val uint64, overwrite bool) error {
	root, err := t.readNode(t.rootChunk)
	if err != nil {
		return err
	}
	if !root.IsLeaf() && len(root.Entries) == 0 {
		return fmt.Errorf("btree: corrupt empty internal root")
	}
	path, err := t.descend(key)
	if err != nil {
		return err
	}
	leaf := path[len(path)-1]
	i := leaf.node.search(key)
	if i < len(leaf.node.Entries) && leaf.node.Entries[i].Key == key {
		if !overwrite {
			return ErrExists
		}
		leaf.node.Entries[i].Val = val
		return t.writeNode(leaf.id, leaf.node)
	}
	leaf.node.Entries = append(leaf.node.Entries, Entry{})
	copy(leaf.node.Entries[i+1:], leaf.node.Entries[i:])
	leaf.node.Entries[i] = Entry{Key: key, Val: val}
	t.size++
	// The leaf's smallest key may have changed: refresh separators.
	if i == 0 {
		if err := t.refreshSeparators(path); err != nil {
			return err
		}
	}
	if len(leaf.node.Entries) <= t.maxEntries {
		return t.writeNode(leaf.id, leaf.node)
	}
	return t.splitUp(path)
}

// refreshSeparators updates ancestors' separator keys after a leftmost-key
// change at the bottom of path.
func (t *Tree) refreshSeparators(path []pathElem) error {
	for i := len(path) - 2; i >= 0; i-- {
		parent := path[i]
		childFirst := path[i+1].node.Entries[0].Key
		if parent.node.Entries[parent.child].Key == childFirst {
			return nil
		}
		parent.node.Entries[parent.child].Key = childFirst
		if err := t.writeNode(parent.id, parent.node); err != nil {
			return err
		}
		if parent.child != 0 {
			return nil
		}
	}
	return nil
}

// splitUp splits the overflowing node at the bottom of path, propagating
// splits toward the root.
func (t *Tree) splitUp(path []pathElem) error {
	for d := len(path) - 1; d >= 0; d-- {
		pe := path[d]
		n := pe.node
		if len(n.Entries) <= t.maxEntries {
			return t.writeNode(pe.id, n)
		}
		mid := len(n.Entries) / 2
		rightID, err := t.reg.Alloc()
		if err != nil {
			return err
		}
		right := &Node{
			Level:   n.Level,
			Next:    -1,
			Entries: append([]Entry(nil), n.Entries[mid:]...),
		}
		if n.IsLeaf() {
			right.Next = n.Next
			n.Next = rightID
		}
		n.Entries = n.Entries[:mid]
		sep := Entry{Key: right.Entries[0].Key, Val: uint64(rightID)}

		if d == 0 {
			// Root split: both halves move so the root chunk stays put.
			leftID, err := t.reg.Alloc()
			if err != nil {
				return err
			}
			left := &Node{Level: n.Level, Next: n.Next, Entries: n.Entries}
			if n.IsLeaf() {
				left.Next = rightID
			}
			if err := t.writeNode(leftID, left); err != nil {
				return err
			}
			if err := t.writeNode(rightID, right); err != nil {
				return err
			}
			newRoot := &Node{
				Level: n.Level + 1,
				Next:  -1,
				Entries: []Entry{
					{Key: left.Entries[0].Key, Val: uint64(leftID)},
					sep,
				},
			}
			t.height++
			return t.writeNode(t.rootChunk, newRoot)
		}

		// B-link publication order: the right sibling becomes visible
		// before the left half is truncated, so a concurrent lock-free
		// reader never observes a key that is in neither node — between
		// the two writes a key may appear in both (harmless), and after
		// the truncation a reader that lands left of its key can move
		// right along the leaf chain.
		if err := t.writeNode(rightID, right); err != nil {
			return err
		}
		if err := t.writeNode(pe.id, n); err != nil {
			return err
		}
		parent := path[d-1]
		pi := parent.child + 1
		parent.node.Entries = append(parent.node.Entries, Entry{})
		copy(parent.node.Entries[pi+1:], parent.node.Entries[pi:])
		parent.node.Entries[pi] = sep
		// Loop continues: the parent may itself overflow.
	}
	return nil
}

// Range invokes fn for every key in [from, to] in ascending order; fn
// returning false stops the scan. It walks the leaf chain.
func (t *Tree) Range(from, to uint64, fn func(key, val uint64) bool) error {
	path, err := t.descend(from)
	if err != nil {
		return err
	}
	leaf := path[len(path)-1]
	id, n := leaf.id, leaf.node
	_ = id
	for {
		for i := n.search(from); i < len(n.Entries); i++ {
			e := n.Entries[i]
			if e.Key > to {
				return nil
			}
			if !fn(e.Key, e.Val) {
				return nil
			}
		}
		if n.Next < 0 {
			return nil
		}
		n, err = t.readNode(n.Next)
		if err != nil {
			return err
		}
	}
}
