package btree

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/sim"
)

// localFetch reads chunks straight from the region (no transport).
func localFetch(reg *region.Region) FetchFunc {
	return func(id int) ([]byte, error) {
		raw := make([]byte, reg.ChunkSize())
		if err := reg.ReadChunkRaw(id, raw); err != nil {
			return nil, err
		}
		return raw, nil
	}
}

func TestReaderGetAndRangeLocal(t *testing.T) {
	tree := newTestTree(t, 1024, 8)
	for k := uint64(0); k < 500; k++ {
		if err := tree.Insert(k*3, k); err != nil {
			t.Fatal(err)
		}
	}
	r := &Reader{
		Fetch:      localFetch(tree.Region()),
		RootChunk:  tree.RootChunk(),
		MaxEntries: tree.MaxEntries(),
	}
	for k := uint64(0); k < 500; k += 37 {
		v, err := r.Get(k * 3)
		if err != nil || v != k {
			t.Fatalf("Get(%d) = %d, %v", k*3, v, err)
		}
	}
	if _, err := r.Get(1); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key err = %v", err)
	}
	var got []uint64
	if err := r.Range(30, 90, func(k, _ uint64) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 21 || got[0] != 30 || got[len(got)-1] != 90 {
		t.Fatalf("range got %v", got)
	}
}

// The Reader over the simulated RDMA fabric: one-sided reads against the
// server-registered region, with a server writer opening real torn windows.
func TestReaderOverFabricWithTornWindows(t *testing.T) {
	e := sim.New(1)
	net := fabric.NewNetwork(e, netmodel.InfiniBand100G)
	serverHost := net.NewHost("server", sim.NewCPU(e, 4))
	clientHost := net.NewHost("client", sim.NewCPU(e, 4))

	reg, err := region.New(2048, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(reg, Config{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 300; k++ {
		if err := tree.Insert(k*2, k); err != nil {
			t.Fatal(err)
		}
	}
	regionMem := serverHost.RegisterRegion(reg)
	qp, _ := net.ConnectQP(clientHost, serverHost, 8)

	// The server writer stages every node publish across a virtual window.
	var writerProc *sim.Proc
	tree.SetPublisher(func(chunkID int, payload []byte) error {
		if writerProc == nil {
			return reg.WriteChunkPrefix(chunkID, payload)
		}
		w, err := reg.BeginWrite(chunkID, payload)
		if err != nil {
			return err
		}
		writerProc.Sleep(2 * time.Microsecond)
		w.Finish()
		return nil
	})

	wg := sim.NewWaitGroup(e)
	wg.Add(2)
	e.Spawn("writer", func(p *sim.Proc) {
		defer wg.Done()
		writerProc = p
		defer func() { writerProc = nil }()
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 300; i++ {
			k := uint64(100_000 + rng.Intn(50_000))
			if err := tree.Insert(k, k); err != nil && !errors.Is(err, ErrExists) {
				t.Error(err)
				return
			}
			p.Sleep(time.Microsecond)
		}
	})
	e.Spawn("reader", func(p *sim.Proc) {
		defer wg.Done()
		r := &Reader{
			Fetch: func(id int) ([]byte, error) {
				return qp.ReadSync(p, regionMem, id*reg.ChunkSize(), reg.ChunkSize())
			},
			RootChunk:  tree.RootChunk(),
			MaxEntries: tree.MaxEntries(),
		}
		for k := uint64(0); k < 300; k += 7 {
			v, err := r.Get(k * 2)
			if err != nil || v != k {
				t.Errorf("Get(%d) = %d, %v", k*2, v, err)
				return
			}
		}
		var prev uint64
		first := true
		if err := r.Range(0, 400, func(k, _ uint64) bool {
			if !first && k <= prev {
				t.Errorf("range out of order: %d after %d", k, prev)
				return false
			}
			first = false
			prev = k
			return true
		}); err != nil {
			t.Error(err)
			return
		}
		t.Logf("torn retries: %d, stale restarts: %d", r.TornRetries, r.StaleRestarts)
	})
	e.Spawn("stop", func(p *sim.Proc) { wg.Wait(p); e.Stop() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRetryBudget(t *testing.T) {
	// A fetch that always returns torn data exhausts the budget.
	reg, err := region.New(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteChunk(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	w, err := reg.BeginWrite(0, []byte("y")) // hold the torn window open
	if err != nil {
		t.Fatal(err)
	}
	defer w.Finish()
	r := &Reader{
		Fetch:           localFetch(reg),
		RootChunk:       0,
		MaxEntries:      8,
		MaxChunkRetries: 3,
	}
	if _, err := r.Get(1); !errors.Is(err, ErrGaveUp) {
		t.Errorf("err = %v, want ErrGaveUp", err)
	}
	if r.TornRetries < 3 {
		t.Errorf("torn retries = %d", r.TornRetries)
	}
}

func TestReaderFetchErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	r := &Reader{
		Fetch:      func(int) ([]byte, error) { return nil, boom },
		RootChunk:  0,
		MaxEntries: 8,
	}
	if _, err := r.Get(1); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}
