package btree

import (
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/nodecache"
)

// cacheReader builds a Reader over tree with a node cache whose clock is the
// returned pointer; fetch/version-read counters are also returned.
func cacheReader(tree *Tree, capacity int, lease time.Duration) (*Reader, *time.Duration, *int, *int) {
	reg := tree.Region()
	now := new(time.Duration)
	fetches, verReads := new(int), new(int)
	r := &Reader{
		Fetch: func(id int) ([]byte, error) {
			*fetches++
			raw := make([]byte, reg.ChunkSize())
			if err := reg.ReadChunkRaw(id, raw); err != nil {
				return nil, err
			}
			return raw, nil
		},
		FetchVersions: func(id int) ([]byte, error) {
			*verReads++
			raw := make([]byte, reg.VersionsSize())
			if err := reg.ReadVersions(id, raw); err != nil {
				return nil, err
			}
			return raw, nil
		},
		Cache:      nodecache.New(capacity, lease, reg.ChunkSize(), reg.VersionsSize()),
		Now:        func() time.Duration { return *now },
		RootChunk:  tree.RootChunk(),
		MaxEntries: tree.MaxEntries(),
	}
	return r, now, fetches, verReads
}

func TestReaderNodeCacheLeaseTier(t *testing.T) {
	tree := newTestTree(t, 1024, 8)
	for k := uint64(0); k < 500; k++ {
		if err := tree.Insert(k*3, k); err != nil {
			t.Fatal(err)
		}
	}
	plain := &Reader{Fetch: localFetch(tree.Region()), RootChunk: tree.RootChunk(), MaxEntries: tree.MaxEntries()}
	cached, _, fetches, verReads := cacheReader(tree, 64, time.Millisecond)

	plainFetches := 0
	basePlain := plain.Fetch
	plain.Fetch = func(id int) ([]byte, error) { plainFetches++; return basePlain(id) }

	for k := uint64(0); k < 500; k += 19 {
		pv, perr := plain.Get(k * 3)
		cv, cerr := cached.Get(k * 3)
		if perr != nil || cerr != nil || pv != cv || cv != k {
			t.Fatalf("Get(%d): plain=(%d,%v) cached=(%d,%v)", k*3, pv, perr, cv, cerr)
		}
	}
	// The clock never moved, so every internal node after the first descent
	// is lease-fresh: no version reads, strictly fewer fetches.
	if *verReads != 0 {
		t.Errorf("lease-fresh reader issued %d version reads", *verReads)
	}
	if *fetches >= plainFetches {
		t.Errorf("cached fetched %d chunks, plain %d", *fetches, plainFetches)
	}
}

func TestReaderNodeCacheVerifyTierAndInvalidation(t *testing.T) {
	tree := newTestTree(t, 1024, 8)
	for k := uint64(0); k < 500; k++ {
		if err := tree.Insert(k*3, k); err != nil {
			t.Fatal(err)
		}
	}
	cached, now, fetches, verReads := cacheReader(tree, 64, time.Millisecond)
	if v, err := cached.Get(300); err != nil || v != 100 {
		t.Fatalf("warm-up Get = %d, %v", v, err)
	}

	// Past the lease, the next descent must revalidate the internal nodes
	// with version-only reads; the only full fetch on the unchanged tree is
	// the leaf, which is never cached.
	*now += 2 * time.Millisecond
	preFetch, preVer := *fetches, *verReads
	if v, err := cached.Get(300); err != nil || v != 100 {
		t.Fatalf("post-lease Get = %d, %v", v, err)
	}
	if *verReads == preVer {
		t.Error("expired lease triggered no version reads")
	}
	if *fetches != preFetch+1 {
		t.Errorf("unchanged tree cost %d full fetches on revalidation, want 1 (the leaf)",
			*fetches-preFetch)
	}

	// Mutate the tree until internal nodes are rewritten; after the lease
	// the changed fingerprints must force full fetches and fresh answers.
	for k := uint64(1000); k < 1700; k++ {
		if err := tree.Insert(k*3, k); err != nil {
			t.Fatal(err)
		}
	}
	*now += 2 * time.Millisecond
	if v, err := cached.Get(1500 * 3); err != nil || v != 1500 {
		t.Fatalf("post-mutation Get = %d, %v", v, err)
	}
	ns := cached.Cache.Stats()
	if ns.Invalidations == 0 {
		t.Error("rewritten nodes were never invalidated")
	}
	if cached.VersionReads == 0 {
		t.Error("Reader.VersionReads not counted")
	}
}

func TestReaderNilCacheUnchanged(t *testing.T) {
	// A Reader without a cache must behave exactly as before the feature.
	tree := newTestTree(t, 256, 8)
	for k := uint64(0); k < 100; k++ {
		if err := tree.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	r := &Reader{Fetch: localFetch(tree.Region()), RootChunk: tree.RootChunk(), MaxEntries: tree.MaxEntries()}
	for k := uint64(0); k < 100; k += 7 {
		if v, err := r.Get(k); err != nil || v != k {
			t.Fatalf("Get(%d) = %d, %v", k, v, err)
		}
	}
	if r.VersionReads != 0 {
		t.Errorf("nil-cache reader recorded %d version reads", r.VersionReads)
	}
}
