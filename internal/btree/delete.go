package btree

import (
	"errors"
	"fmt"
)

// Delete removes key, rebalancing underfull nodes by borrowing from or
// merging with a sibling, and collapsing the root when it has one child.
func (t *Tree) Delete(key uint64) error {
	path, err := t.descend(key)
	if err != nil {
		return err
	}
	leaf := path[len(path)-1]
	i := leaf.node.search(key)
	if i >= len(leaf.node.Entries) || leaf.node.Entries[i].Key != key {
		return ErrNotFound
	}
	leaf.node.Entries = append(leaf.node.Entries[:i], leaf.node.Entries[i+1:]...)
	t.size--
	if i == 0 && len(leaf.node.Entries) > 0 {
		if err := t.refreshSeparators(path); err != nil {
			return err
		}
	}
	return t.rebalanceUp(path)
}

// rebalanceUp fixes underflow from the bottom of path toward the root.
func (t *Tree) rebalanceUp(path []pathElem) error {
	for d := len(path) - 1; d > 0; d-- {
		pe := path[d]
		if len(pe.node.Entries) >= t.minEntries {
			return t.writeNode(pe.id, pe.node)
		}
		parent := path[d-1]
		if err := t.fixUnderflow(parent, pe); err != nil {
			return err
		}
		// The parent lost or changed entries; continue upward.
	}
	// Root handling: collapse an internal root with a single child.
	root := path[0]
	if err := t.writeNode(root.id, root.node); err != nil {
		return err
	}
	for {
		n, err := t.readNode(t.rootChunk)
		if err != nil {
			return err
		}
		if n.IsLeaf() || len(n.Entries) != 1 {
			return nil
		}
		childID := int(n.Entries[0].Val)
		child, err := t.readNode(childID)
		if err != nil {
			return err
		}
		if err := t.writeNode(t.rootChunk, child); err != nil {
			return err
		}
		if err := t.freeChunk(childID); err != nil {
			return fmt.Errorf("btree: shrink free: %w", err)
		}
		t.height--
	}
}

// fixUnderflow repairs the underfull child at parent.child by borrowing
// from an adjacent sibling or merging with it.
func (t *Tree) fixUnderflow(parent, pe pathElem) error {
	ci := parent.child
	n := pe.node

	// Try borrowing from the left sibling.
	if ci > 0 {
		leftID := int(parent.node.Entries[ci-1].Val)
		left, err := t.readNode(leftID)
		if err != nil {
			return err
		}
		if len(left.Entries) > t.minEntries {
			moved := left.Entries[len(left.Entries)-1]
			left.Entries = left.Entries[:len(left.Entries)-1]
			n.Entries = append(n.Entries, Entry{})
			copy(n.Entries[1:], n.Entries)
			n.Entries[0] = moved
			parent.node.Entries[ci].Key = moved.Key
			if err := t.writeNode(leftID, left); err != nil {
				return err
			}
			if err := t.writeNode(pe.id, n); err != nil {
				return err
			}
			return nil // parent rewritten by caller loop
		}
	}
	// Try borrowing from the right sibling.
	if ci+1 < len(parent.node.Entries) {
		rightID := int(parent.node.Entries[ci+1].Val)
		right, err := t.readNode(rightID)
		if err != nil {
			return err
		}
		if len(right.Entries) > t.minEntries {
			moved := right.Entries[0]
			right.Entries = append(right.Entries[:0], right.Entries[1:]...)
			n.Entries = append(n.Entries, moved)
			parent.node.Entries[ci+1].Key = right.Entries[0].Key
			if err := t.writeNode(rightID, right); err != nil {
				return err
			}
			if err := t.writeNode(pe.id, n); err != nil {
				return err
			}
			return nil
		}
	}
	// Merge with a sibling (prefer left).
	if ci > 0 {
		leftID := int(parent.node.Entries[ci-1].Val)
		left, err := t.readNode(leftID)
		if err != nil {
			return err
		}
		left.Entries = append(left.Entries, n.Entries...)
		if n.IsLeaf() {
			left.Next = n.Next
		}
		parent.node.Entries = append(parent.node.Entries[:ci], parent.node.Entries[ci+1:]...)
		if err := t.writeNode(leftID, left); err != nil {
			return err
		}
		return t.freeChunk(pe.id)
	}
	if ci+1 < len(parent.node.Entries) {
		rightID := int(parent.node.Entries[ci+1].Val)
		right, err := t.readNode(rightID)
		if err != nil {
			return err
		}
		n.Entries = append(n.Entries, right.Entries...)
		if n.IsLeaf() {
			n.Next = right.Next
		}
		parent.node.Entries = append(parent.node.Entries[:ci+1], parent.node.Entries[ci+2:]...)
		if err := t.writeNode(pe.id, n); err != nil {
			return err
		}
		return t.freeChunk(rightID)
	}
	// Lone child of the root: write as-is; the root collapse handles it.
	return t.writeNode(pe.id, n)
}

// CheckInvariants verifies structural invariants: sorted keys, separator
// correctness, occupancy bounds, level consistency, leaf-chain order, and
// the size count. Intended for tests.
func (t *Tree) CheckInvariants() error {
	seen := make(map[int]bool)
	var leftmost []int // leftmost chunk per level for chain checking
	var walk func(id, wantLevel int, isRoot bool, lo uint64, hasLo bool) error
	walk = func(id, wantLevel int, isRoot bool, lo uint64, hasLo bool) error {
		if seen[id] {
			return fmt.Errorf("btree: chunk %d referenced twice", id)
		}
		seen[id] = true
		n, err := t.readNodeRegion(id)
		if err != nil {
			return err
		}
		if t.cache != nil && t.cache[id] != nil {
			c := t.cache[id]
			if c.Level != n.Level || len(c.Entries) != len(n.Entries) || c.Next != n.Next {
				return fmt.Errorf("btree: chunk %d cache incoherent", id)
			}
			for i := range c.Entries {
				if c.Entries[i] != n.Entries[i] {
					return fmt.Errorf("btree: chunk %d cache entry %d differs", id, i)
				}
			}
		}
		if n.Level != wantLevel {
			return fmt.Errorf("btree: chunk %d level %d, want %d", id, n.Level, wantLevel)
		}
		min := t.minEntries
		if isRoot {
			min = 0
			if !n.IsLeaf() {
				min = 2
			}
		}
		if len(n.Entries) < min || len(n.Entries) > t.maxEntries {
			return fmt.Errorf("btree: chunk %d has %d entries, want [%d, %d]",
				id, len(n.Entries), min, t.maxEntries)
		}
		if hasLo && len(n.Entries) > 0 && n.Entries[0].Key != lo {
			return fmt.Errorf("btree: chunk %d first key %d != separator %d",
				id, n.Entries[0].Key, lo)
		}
		if len(leftmost) <= wantLevel {
			// walk is depth-first leftmost-first; record per-level heads.
			for len(leftmost) <= wantLevel {
				leftmost = append(leftmost, -1)
			}
		}
		if leftmost[wantLevel] == -1 {
			leftmost[wantLevel] = id
		}
		if n.IsLeaf() {
			return nil
		}
		if n.Next != -1 {
			return fmt.Errorf("btree: internal chunk %d has a next pointer", id)
		}
		for i, e := range n.Entries {
			if err := walk(int(e.Val), wantLevel-1, false, e.Key, true); err != nil {
				return err
			}
			_ = i
		}
		return nil
	}
	if err := walk(t.rootChunk, t.height-1, true, 0, false); err != nil {
		return err
	}
	// Leaf chain must enumerate exactly size keys in strict order.
	total := 0
	var prev uint64
	first := true
	if err := t.Range(0, ^uint64(0), func(k, _ uint64) bool {
		if !first && k <= prev {
			total = -1
			return false
		}
		first = false
		prev = k
		total++
		return true
	}); err != nil {
		return err
	}
	if total == -1 {
		return errors.New("btree: leaf chain out of order")
	}
	if total != t.size {
		return fmt.Errorf("btree: leaf chain has %d keys, size %d", total, t.size)
	}
	return nil
}
