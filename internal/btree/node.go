// Package btree implements a B+-tree stored node-per-chunk in the same
// RDMA-registered, version-protected memory region as the R-tree,
// demonstrating the paper's §VI claim that Catfish's three mechanisms —
// fast messaging, one-sided offloading, and the adaptive switch — form a
// framework for link-based data structures beyond R-trees.
//
// Keys and values are uint64 (a fixed-size layout keeps nodes chunk-
// aligned; variable-size values belong in a separate log the values point
// into, as in the key-value stores the paper cites). Leaves are chained
// left-to-right for range scans. Like the R-tree, the tree performs no
// synchronization itself: a server serializes writers, and lock-free remote
// readers validate per-cacheline versions and retry (see Reader).
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// On-chunk node layout (little-endian), inside the region chunk payload:
//
//	offset 0:  level uint32 (0 = leaf)
//	offset 4:  count uint32
//	offset 8:  next  uint64 (right sibling chunk + 1; 0 = none; leaves only)
//	offset 16: count entries of 16 bytes: key uint64, val uint64
//
// Internal entries hold (separator key, child chunk ID): the separator is
// the smallest key in the child's subtree. Entries are sorted by key.
const (
	headerSize = 16
	entrySize  = 16
)

// Errors.
var (
	ErrCorruptNode = errors.New("btree: corrupt node encoding")
	ErrNotFound    = errors.New("btree: key not found")
)

// Entry is one slot of a node.
type Entry struct {
	Key uint64
	Val uint64 // child chunk ID in internal nodes
}

// Node is the decoded form of a B+-tree node.
type Node struct {
	Level   int
	Next    int // right-sibling chunk ID, -1 when none (leaves only)
	Entries []Entry
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Level == 0 }

// EncodedSize returns the payload bytes the node occupies.
func (n *Node) EncodedSize() int { return headerSize + len(n.Entries)*entrySize }

// Encode appends the node's on-chunk encoding to buf and returns it.
func (n *Node) Encode(buf []byte) []byte {
	need := n.EncodedSize()
	if cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	buf = buf[:need]
	binary.LittleEndian.PutUint32(buf[0:], uint32(n.Level))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(n.Entries)))
	next := uint64(0)
	if n.Next >= 0 {
		next = uint64(n.Next) + 1
	}
	binary.LittleEndian.PutUint64(buf[8:], next)
	off := headerSize
	for _, e := range n.Entries {
		binary.LittleEndian.PutUint64(buf[off:], e.Key)
		binary.LittleEndian.PutUint64(buf[off+8:], e.Val)
		off += entrySize
	}
	return buf
}

// DecodeNode parses a node from chunk payload bytes into n, reusing n's
// entry slice. maxEntries bounds the accepted count (0 = payload-bounded).
func DecodeNode(payload []byte, n *Node, maxEntries int) error {
	if len(payload) < headerSize {
		return fmt.Errorf("%w: short header", ErrCorruptNode)
	}
	level := binary.LittleEndian.Uint32(payload[0:])
	count := binary.LittleEndian.Uint32(payload[4:])
	if level > 64 {
		return fmt.Errorf("%w: level %d", ErrCorruptNode, level)
	}
	limit := (len(payload) - headerSize) / entrySize
	if int(count) > limit || (maxEntries > 0 && int(count) > maxEntries) {
		return fmt.Errorf("%w: count %d", ErrCorruptNode, count)
	}
	n.Level = int(level)
	next := binary.LittleEndian.Uint64(payload[8:])
	n.Next = int(next) - 1
	if cap(n.Entries) < int(count) {
		n.Entries = make([]Entry, count)
	}
	n.Entries = n.Entries[:count]
	off := headerSize
	for i := range n.Entries {
		n.Entries[i] = Entry{
			Key: binary.LittleEndian.Uint64(payload[off:]),
			Val: binary.LittleEndian.Uint64(payload[off+8:]),
		}
		off += entrySize
	}
	// Keys must be strictly sorted; a violation marks a stale/garbage node.
	for i := 1; i < len(n.Entries); i++ {
		if n.Entries[i-1].Key >= n.Entries[i].Key {
			return fmt.Errorf("%w: unsorted keys", ErrCorruptNode)
		}
	}
	return nil
}

// NodeCapacity returns the maximum entries a payload of the given size
// holds.
func NodeCapacity(payloadSize int) int {
	if payloadSize < headerSize {
		return 0
	}
	return (payloadSize - headerSize) / entrySize
}

// search returns the index of the first entry with key >= k, in [0, count].
func (n *Node) search(k uint64) int {
	lo, hi := 0, len(n.Entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.Entries[mid].Key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the index of the child subtree that may contain k:
// the rightmost entry with separator <= k (0 when k precedes all).
func (n *Node) childIndex(k uint64) int {
	i := n.search(k)
	if i < len(n.Entries) && n.Entries[i].Key == k {
		return i
	}
	if i == 0 {
		return 0
	}
	return i - 1
}
