package sim

import (
	"math"
	"time"

	"github.com/catfish-db/catfish/internal/stats"
)

// CPU models a multi-core processor under processor sharing: n concurrent
// jobs on c cores each progress at rate min(1, c/n). This is the model used
// for event-based servers and for client-side CPUs — threads block when they
// have no work, so the CPU is work-conserving and latency grows linearly
// with oversubscription (the behaviour of the paper's event-based fast
// messaging, Fig 7).
type CPU struct {
	e        *Engine
	cores    float64
	jobs     []*cpuJob // insertion order, for deterministic completions
	last     time.Duration
	timerGen uint64
	util     *stats.Utilization
}

type cpuJob struct {
	remaining float64 // seconds of service demand left
	fut       *Future[struct{}]
}

// NewCPU returns a processor-sharing CPU with the given core count.
func NewCPU(e *Engine, cores int) *CPU {
	if cores < 1 {
		cores = 1
	}
	return &CPU{
		e:     e,
		cores: float64(cores),
		util:  stats.NewUtilization(float64(cores)),
	}
}

// Cores returns the core count.
func (c *CPU) Cores() int { return int(c.cores) }

// rate returns the per-job progress rate under the current job count.
func (c *CPU) rate() float64 {
	n := float64(len(c.jobs))
	if n <= c.cores {
		return 1
	}
	return c.cores / n
}

// advance applies elapsed virtual time to all jobs' remaining demand.
func (c *CPU) advance() {
	now := c.e.Now()
	if now > c.last && len(c.jobs) > 0 {
		dec := (now - c.last).Seconds() * c.rate()
		for _, j := range c.jobs {
			j.remaining -= dec
		}
	}
	c.last = now
}

// cpuEps (seconds) absorbs float rounding in remaining demand. The engine
// clock has nanosecond granularity, so anything under 2 ns of residual work
// counts as done — otherwise truncation in the timer conversion could
// produce a zero-delay reschedule loop.
const cpuEps = 2e-9

// completeReady finishes all jobs whose demand is exhausted, in insertion
// order, keeping the simulation deterministic.
func (c *CPU) completeReady() {
	keep := c.jobs[:0]
	var done []*cpuJob
	for _, j := range c.jobs {
		if j.remaining <= cpuEps {
			done = append(done, j)
		} else {
			keep = append(keep, j)
		}
	}
	for i := len(keep); i < len(c.jobs); i++ {
		c.jobs[i] = nil
	}
	c.jobs = keep
	for _, j := range done {
		j.fut.Complete(struct{}{})
	}
	c.util.SetBusy(c.e.Now(), math.Min(float64(len(c.jobs)), c.cores))
}

// reschedule arms the engine timer for the next job completion.
func (c *CPU) reschedule() {
	c.timerGen++
	if len(c.jobs) == 0 {
		return
	}
	minRem := math.Inf(1)
	for _, j := range c.jobs {
		if j.remaining < minRem {
			minRem = j.remaining
		}
	}
	if minRem < 0 {
		minRem = 0
	}
	// Round up to the next nanosecond so the timer always lands at or after
	// the true completion instant.
	wait := time.Duration(minRem/c.rate()*float64(time.Second)) + 1
	gen := c.timerGen
	c.e.After(wait, func() {
		if gen != c.timerGen {
			return
		}
		c.advance()
		c.completeReady()
		c.reschedule()
	})
}

// Run blocks the process while the CPU serves demand of work, sharing cores
// with all concurrent jobs.
func (c *CPU) Run(p *Proc, demand time.Duration) {
	if demand <= 0 {
		return
	}
	c.advance()
	j := &cpuJob{remaining: demand.Seconds(), fut: NewFuture[struct{}](c.e)}
	c.jobs = append(c.jobs, j)
	c.util.SetBusy(c.e.Now(), math.Min(float64(len(c.jobs)), c.cores))
	c.reschedule()
	j.fut.Wait(p)
}

// Submit charges demand to the CPU without blocking the caller; the returned
// future completes when the work finishes. Used for kernel-side TCP
// processing that overlaps the sender's own progress.
func (c *CPU) Submit(demand time.Duration) *Future[struct{}] {
	fut := NewFuture[struct{}](c.e)
	if demand <= 0 {
		fut.Complete(struct{}{})
		return fut
	}
	c.advance()
	j := &cpuJob{remaining: demand.Seconds(), fut: fut}
	c.jobs = append(c.jobs, j)
	c.util.SetBusy(c.e.Now(), math.Min(float64(len(c.jobs)), c.cores))
	c.reschedule()
	return fut
}

// Inflight returns the number of jobs currently being served.
func (c *CPU) Inflight() int { return len(c.jobs) }

// UtilizationWindow returns mean utilization (0..1) since the previous call
// and resets the window; this is what the Catfish server embeds in its
// heartbeats.
func (c *CPU) UtilizationWindow() float64 {
	c.advance()
	return c.util.Window(c.e.Now())
}

// UtilizationTotal returns mean utilization from time zero to now.
func (c *CPU) UtilizationTotal() float64 {
	c.advance()
	return c.util.Total(c.e.Now())
}

// PollCPU models a multi-core processor running busy-polling worker threads
// (the paper's polling-based fast messaging, and FaRM's dispatch model).
// Threads are pinned round-robin to cores. A polling thread that holds the
// CPU and finds no message burns a poll slice before the next thread runs,
// so every request pays a "poll tax" proportional to the number of thread
// neighbours on its core, and a request arriving at an idle core still waits
// a random rotation phase. Under oversubscription this produces the
// superlinear latency growth of the paper's Fig 7(a).
type PollCPU struct {
	e         *Engine
	pollSlice time.Duration
	cores     []*pollCore
	next      int
	useful    *stats.Utilization
}

type pollCore struct {
	threads   int
	busyUntil time.Duration
	inflight  int
}

// NewPollCPU returns a polling CPU with the given core count. pollSlice is
// the time one idle thread holds a core per rotation (poll loop iteration
// plus context switch).
func NewPollCPU(e *Engine, cores int, pollSlice time.Duration) *PollCPU {
	if cores < 1 {
		cores = 1
	}
	c := &PollCPU{
		e:         e,
		pollSlice: pollSlice,
		cores:     make([]*pollCore, cores),
		useful:    stats.NewUtilization(float64(cores)),
	}
	for i := range c.cores {
		c.cores[i] = &pollCore{}
	}
	return c
}

// Cores returns the core count.
func (c *PollCPU) Cores() int { return len(c.cores) }

// PollThread is one busy-polling worker thread registered on a PollCPU.
type PollThread struct {
	cpu  *PollCPU
	core *pollCore
}

// Register adds a worker thread, pinning it to the next core round-robin.
func (c *PollCPU) Register() *PollThread {
	core := c.cores[c.next%len(c.cores)]
	c.next++
	core.threads++
	return &PollThread{cpu: c, core: core}
}

// Process blocks the process for the scheduling delay plus service time of a
// request with the given CPU demand, executed by this polling thread.
func (t *PollThread) Process(p *Proc, demand time.Duration) {
	c, core := t.cpu, t.core
	now := p.Now()
	start := core.busyUntil
	if start < now {
		// Core was idle: the request waits a random fraction of a full
		// rotation of its core-mates' poll slices before its thread runs.
		idle := core.threads - 1
		phase := time.Duration(p.Rand().Float64() * float64(idle) * float64(c.pollSlice))
		start = now + phase
	}
	tax := time.Duration(core.threads-1) * c.pollSlice
	core.busyUntil = start + demand + tax
	core.inflight++
	c.track()
	p.Sleep(core.busyUntil - now)
	core.inflight--
	c.track()
}

func (c *PollCPU) track() {
	busy := 0.0
	for _, core := range c.cores {
		if core.inflight > 0 {
			busy++
		}
	}
	c.useful.SetBusy(c.e.Now(), busy)
}

// UsefulUtilizationTotal returns the fraction of CPU time spent on request
// work (as opposed to polling) from time zero to now. The raw utilization of
// a polling CPU is always 1.0 once threads are registered.
func (c *PollCPU) UsefulUtilizationTotal() float64 {
	return c.useful.Total(c.e.Now())
}

// UtilizationWindow reports 1.0 whenever any thread is registered — busy
// polling pegs the cores, which is exactly what the server's heartbeat would
// observe.
func (c *PollCPU) UtilizationWindow() float64 {
	for _, core := range c.cores {
		if core.threads > 0 {
			return 1.0
		}
	}
	return 0
}

// Pipe models a serialized transmission resource (one direction of a NIC or
// link): transfers queue FIFO and occupy the pipe for size/bandwidth. It
// does not block processes; callers schedule their own sleeps from the
// returned completion times.
type Pipe struct {
	bytesPerSec float64
	nextFree    time.Duration
	meter       stats.ByteMeter
}

// NewPipe returns a pipe with the given bandwidth in bits per second.
func NewPipe(bitsPerSec float64) *Pipe {
	return &Pipe{bytesPerSec: bitsPerSec / 8}
}

// Reserve books a transfer of size bytes starting no earlier than now and
// returns the time the last byte leaves the pipe.
func (l *Pipe) Reserve(now time.Duration, size int) time.Duration {
	if size < 0 {
		size = 0
	}
	tx := time.Duration(float64(size) / l.bytesPerSec * float64(time.Second))
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	l.nextFree = start + tx
	l.meter.Add(size)
	return l.nextFree
}

// Bytes returns the total bytes transferred through the pipe.
func (l *Pipe) Bytes() uint64 { return l.meter.Bytes() }

// Gbps returns the mean rate over elapsed.
func (l *Pipe) Gbps(elapsed time.Duration) float64 { return l.meter.Gbps(elapsed) }
