package sim

// Future is a one-shot value that processes can wait on. The zero value is
// not usable; create futures with NewFuture.
type Future[T any] struct {
	e         *Engine
	done      bool
	val       T
	waiters   []*Proc
	callbacks []func(T)
}

// NewFuture returns an incomplete future bound to e.
func NewFuture[T any](e *Engine) *Future[T] {
	return &Future[T]{e: e}
}

// Complete resolves the future with v and wakes all waiters at the current
// virtual time. Completing an already-complete future is a no-op (the first
// value wins), which mirrors the idempotence of hardware completion events.
func (f *Future[T]) Complete(v T) {
	if f.done {
		return
	}
	f.done = true
	f.val = v
	for _, p := range f.waiters {
		f.e.unblock(p)
	}
	f.waiters = nil
	for _, fn := range f.callbacks {
		fn(v)
	}
	f.callbacks = nil
}

// Then registers fn to run when the future completes (immediately if it
// already has). Callbacks run inline in whatever context completes the
// future and must not block; they are the glue for completion chaining
// (e.g. "after the kernel CPU finishes, push into the socket inbox").
func (f *Future[T]) Then(fn func(T)) {
	if f.done {
		fn(f.val)
		return
	}
	f.callbacks = append(f.callbacks, fn)
}

// Done reports whether the future has been completed.
func (f *Future[T]) Done() bool { return f.done }

// Value returns the completed value; it is only meaningful when Done.
func (f *Future[T]) Value() T { return f.val }

// Wait blocks the process until the future completes and returns its value.
func (f *Future[T]) Wait(p *Proc) T {
	for !f.done {
		f.waiters = append(f.waiters, p)
		p.block("future")
	}
	return f.val
}

// Queue is an unbounded FIFO mailbox. Pushers never block; poppers block
// while the queue is empty. It is the simulation analogue of an RDMA
// completion queue paired with an event channel.
type Queue[T any] struct {
	e       *Engine
	items   []T
	waiters []*Proc
}

// NewQueue returns an empty queue bound to e.
func NewQueue[T any](e *Engine) *Queue[T] {
	return &Queue[T]{e: e}
}

// Push appends v and wakes the oldest waiter, if any.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		p := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.e.unblock(p)
	}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// TryPop removes and returns the head item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Pop blocks the process until an item is available, then removes and
// returns it.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.block("queue")
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// WaitGroup counts outstanding work items; Wait blocks until the count
// reaches zero. Unlike sync.WaitGroup it is usable only inside a simulation.
type WaitGroup struct {
	e       *Engine
	count   int
	waiters []*Proc
}

// NewWaitGroup returns a wait group bound to e.
func NewWaitGroup(e *Engine) *WaitGroup {
	return &WaitGroup{e: e}
}

// Add adds delta (which may be negative) to the counter. When the counter
// reaches zero, all waiters wake.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.count == 0 {
		for _, p := range w.waiters {
			w.e.unblock(p)
		}
		w.waiters = nil
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks until the counter is zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.count > 0 {
		w.waiters = append(w.waiters, p)
		p.block("waitgroup")
	}
}

// Resource is a counted FIFO resource (a semaphore with fair queueing):
// think QP send-queue slots or buffer credits.
type Resource struct {
	e        *Engine
	capacity int
	avail    int
	queue    []resWaiter
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource returns a resource with the given capacity.
func NewResource(e *Engine, capacity int) *Resource {
	return &Resource{e: e, capacity: capacity, avail: capacity}
}

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int { return r.capacity }

// Avail returns the currently available units.
func (r *Resource) Avail() int { return r.avail }

// Acquire blocks the process until n units are available, then takes them.
// Requests are granted strictly in FIFO order. n must not exceed capacity.
func (r *Resource) Acquire(p *Proc, n int) {
	if n > r.capacity {
		panic("sim: Resource.Acquire exceeds capacity")
	}
	if len(r.queue) == 0 && r.avail >= n {
		r.avail -= n
		return
	}
	r.queue = append(r.queue, resWaiter{p: p, n: n})
	for {
		p.block("resource")
		// Woken by Release when at the head with enough units; verify.
		if len(r.queue) > 0 && r.queue[0].p == p && r.avail >= n {
			r.queue = r.queue[1:]
			r.avail -= n
			// Cascade: the new head may also fit in what remains.
			if len(r.queue) > 0 && r.avail >= r.queue[0].n {
				r.e.unblock(r.queue[0].p)
			}
			return
		}
	}
}

// Release returns n units and grants queued acquirers in order.
func (r *Resource) Release(n int) {
	r.avail += n
	if r.avail > r.capacity {
		panic("sim: Resource.Release over capacity")
	}
	if len(r.queue) > 0 && r.avail >= r.queue[0].n {
		r.e.unblock(r.queue[0].p)
	}
}

// rwMaxReaders bounds concurrent readers of an RWLock; any value far above
// realistic process counts works, since a writer simply acquires them all.
const rwMaxReaders = 1 << 20

// RWLock is a fair readers-writer lock for simulated processes, used as the
// Catfish server's tree latch. FIFO ordering of the underlying resource
// prevents writer starvation.
type RWLock struct {
	res *Resource
}

// NewRWLock returns an unlocked RWLock.
func NewRWLock(e *Engine) *RWLock {
	return &RWLock{res: NewResource(e, rwMaxReaders)}
}

// RLock acquires a shared lock.
func (l *RWLock) RLock(p *Proc) { l.res.Acquire(p, 1) }

// RUnlock releases a shared lock.
func (l *RWLock) RUnlock() { l.res.Release(1) }

// Lock acquires the exclusive lock.
func (l *RWLock) Lock(p *Proc) { l.res.Acquire(p, rwMaxReaders) }

// Unlock releases the exclusive lock.
func (l *RWLock) Unlock() { l.res.Release(rwMaxReaders) }
