package sim

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := New(1)
	var at time.Duration
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 10*time.Millisecond {
		t.Errorf("woke at %v, want 10ms", at)
	}
	if e.Now() != 10*time.Millisecond {
		t.Errorf("engine now = %v", e.Now())
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := New(1)
	ran := false
	e.Spawn("p", func(p *Proc) {
		p.Sleep(-time.Second)
		ran = true
		if p.Now() != 0 {
			t.Errorf("now = %v after negative sleep", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("process did not run")
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	run := func() []string {
		e := New(42)
		var order []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Spawn(name, func(p *Proc) {
				p.Sleep(5 * time.Millisecond)
				order = append(order, name)
				p.Sleep(5 * time.Millisecond)
				order = append(order, name+"2")
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	second := run()
	if len(first) != 6 {
		t.Fatalf("got %d entries", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("non-deterministic ordering: %v vs %v", first, second)
		}
	}
	// Same-time events fire in scheduling order: a, b, c.
	if first[0] != "a" || first[1] != "b" || first[2] != "c" {
		t.Errorf("tie-break order wrong: %v", first)
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := New(1)
	var childAt time.Duration
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Spawn("child", func(c *Proc) {
			childAt = c.Now()
		})
		p.Sleep(time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != time.Millisecond {
		t.Errorf("child started at %v, want 1ms", childAt)
	}
}

func TestFuture(t *testing.T) {
	e := New(1)
	f := NewFuture[int](e)
	var got int
	var gotAt time.Duration
	e.Spawn("waiter", func(p *Proc) {
		got = f.Wait(p)
		gotAt = p.Now()
	})
	e.Spawn("completer", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		f.Complete(7)
		f.Complete(99) // idempotent: first value wins
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("future value = %d, want 7", got)
	}
	if gotAt != 3*time.Millisecond {
		t.Errorf("woke at %v", gotAt)
	}
	if !f.Done() || f.Value() != 7 {
		t.Error("future state wrong after completion")
	}
}

func TestFutureWaitAfterComplete(t *testing.T) {
	e := New(1)
	f := NewFuture[string](e)
	f.Complete("x")
	var got string
	e.Spawn("late", func(p *Proc) {
		got = f.Wait(p) // must not block
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "x" {
		t.Errorf("got %q", got)
	}
}

func TestFutureMultipleWaiters(t *testing.T) {
	e := New(1)
	f := NewFuture[int](e)
	woke := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			f.Wait(p)
			woke++
		})
	}
	e.Spawn("c", func(p *Proc) {
		p.Sleep(time.Millisecond)
		f.Complete(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 5 {
		t.Errorf("woke %d waiters, want 5", woke)
	}
}

func TestQueueFIFO(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e)
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			got = append(got, q.Pop(p))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 4; i++ {
			p.Sleep(time.Millisecond)
			q.Push(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got %v, want [1 2 3 4]", got)
		}
	}
}

func TestQueueTryPop(t *testing.T) {
	e := New(1)
	q := NewQueue[string](e)
	e.Spawn("p", func(p *Proc) {
		if _, ok := q.TryPop(); ok {
			t.Error("TryPop on empty queue returned ok")
		}
		q.Push("a")
		q.Push("b")
		if q.Len() != 2 {
			t.Errorf("Len = %d", q.Len())
		}
		v, ok := q.TryPop()
		if !ok || v != "a" {
			t.Errorf("TryPop = %q, %v", v, ok)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitGroup(t *testing.T) {
	e := New(1)
	wg := NewWaitGroup(e)
	wg.Add(3)
	var doneAt time.Duration
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Millisecond
		e.Spawn("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3*time.Millisecond {
		t.Errorf("waiter finished at %v, want 3ms", doneAt)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := New(1)
	r := NewResource(e, 2)
	var order []string
	hold := func(name string, units int, holdFor time.Duration) {
		e.Spawn(name, func(p *Proc) {
			r.Acquire(p, units)
			order = append(order, name+"+")
			p.Sleep(holdFor)
			r.Release(units)
			order = append(order, name+"-")
		})
	}
	hold("a", 2, 10*time.Millisecond)
	hold("b", 1, 5*time.Millisecond)
	hold("c", 1, 5*time.Millisecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a+", "a-", "b+", "c+", "b-", "c-"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if r.Avail() != r.Capacity() {
		t.Errorf("avail = %d after all released", r.Avail())
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New(1)
	f := NewFuture[int](e)
	e.Spawn("stuck", func(p *Proc) {
		f.Wait(p)
	})
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestStopKillsProcesses(t *testing.T) {
	e := New(1)
	ticks := 0
	e.Spawn("forever", func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
			ticks++
		}
	})
	e.Spawn("stopper", func(p *Proc) {
		p.Sleep(5500 * time.Microsecond)
		p.Engine().Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
	if !e.Stopped() {
		t.Error("engine should report stopped")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	ticks := 0
	e.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
			ticks++
		}
	})
	if err := e.RunUntil(10500 * time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Errorf("ticks = %d, want 10", ticks)
	}
	if e.Now() != 10500*time.Microsecond {
		t.Errorf("now = %v", e.Now())
	}
}

func TestAfterCallback(t *testing.T) {
	e := New(1)
	var firedAt time.Duration
	e.Spawn("p", func(p *Proc) {
		e.After(2*time.Millisecond, func() {
			firedAt = e.Now()
		})
		p.Sleep(5 * time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if firedAt != 2*time.Millisecond {
		t.Errorf("callback fired at %v", firedAt)
	}
}

func TestRunEmptyEngine(t *testing.T) {
	e := New(1)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		e := New(int64(round))
		q := NewQueue[int](e)
		for i := 0; i < 10; i++ {
			e.Spawn("blocked", func(p *Proc) {
				q.Pop(p) // never satisfied: killed at shutdown
			})
			e.Spawn("sleeper", func(p *Proc) {
				for {
					p.Sleep(time.Millisecond)
				}
			})
		}
		e.Spawn("stopper", func(p *Proc) {
			p.Sleep(5 * time.Millisecond)
			e.Stop()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Give exiting goroutines a moment to unwind.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
