// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine drives a set of processes (goroutines) over a virtual clock.
// Exactly one process runs at a time: the engine resumes the process whose
// wake-up event is earliest, waits until it parks again (by sleeping,
// waiting on a future, popping an empty queue, or acquiring a contended
// resource), and then advances the clock to the next event. Because hand-off
// is strictly sequential and all tie-breaking uses a monotone sequence
// number, a simulation is fully deterministic for a given seed.
//
// Processes execute ordinary sequential Go code; no continuation-passing is
// needed. Real data structures (byte buffers, trees) are mutated at the
// virtual instants the model dictates, so protocol-level behaviour — torn
// reads, ring-buffer wrap-arounds, version-check retries — is exercised for
// real rather than being approximated analytically.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// ErrDeadlock is returned by Run when no events remain but processes are
// still blocked on futures, queues, or resources.
var ErrDeadlock = errors.New("sim: deadlock: blocked processes remain with no pending events")

// errKilled is the panic payload used to unwind a process goroutine when the
// engine shuts down early.
type killedError struct{}

func (killedError) Error() string { return "sim: process killed by engine shutdown" }

// Engine is a discrete-event simulation engine. Create one with New, spawn
// processes, then call Run.
type Engine struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	parked  chan struct{}
	rng     *rand.Rand
	stopped bool

	active  int              // spawned processes that have not finished
	blocked map[*Proc]string // procs parked without a scheduled event -> reason
	procs   []*Proc          // all procs ever spawned (for shutdown)
}

// New returns an engine whose random source is seeded with seed. The same
// seed yields an identical event ordering.
func New(seed int64) *Engine {
	return &Engine{
		parked:  make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
		blocked: make(map[*Proc]string),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from within processes (or before Run), never concurrently.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Stop requests that the simulation end. It may be called from within a
// process; the engine finishes the current hand-off, kills all remaining
// processes, and Run returns nil.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// event is a scheduled wake-up: either a process resume or an inline
// callback (used by resources' internal timers). Callbacks run on the engine
// loop and must not block.
type event struct {
	at  time.Duration
	seq uint64
	p   *Proc
	fn  func()
}

type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{}
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h).less(l, smallest) {
			smallest = l
		}
		if r < n && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// schedule enqueues a wake-up at absolute time at.
func (e *Engine) schedule(at time.Duration, p *Proc, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, p: p, fn: fn})
}

// After schedules fn to run on the engine loop after delay. fn must not
// block; it typically completes futures or pushes to queues, which in turn
// schedule process resumes.
func (e *Engine) After(delay time.Duration, fn func()) {
	e.schedule(e.now+delay, nil, fn)
}

// Proc is a simulated process. All methods must be called from the process's
// own goroutine (inside the function passed to Spawn).
type Proc struct {
	e      *Engine
	name   string
	resume chan bool // true = continue, false = killed
	done   bool
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.e.now }

// Rand returns the engine's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.e.rng }

// Spawn starts a new process. It may be called before Run or from within a
// running process; the new process begins executing at the current virtual
// time, after the caller next parks.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{e: e, name: name, resume: make(chan bool)}
	e.active++
	e.procs = append(e.procs, p)
	go func() {
		if !<-p.resume {
			p.finish()
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedError); !ok {
					panic(r)
				}
			}
			p.finish()
		}()
		fn(p)
	}()
	e.schedule(e.now, p, nil)
	return p
}

// Spawn starts a sibling process; see Engine.Spawn.
func (p *Proc) Spawn(name string, fn func(p *Proc)) *Proc {
	return p.e.Spawn(name, fn)
}

// finish marks the process done and returns control to the engine loop.
func (p *Proc) finish() {
	p.done = true
	p.e.active--
	p.e.parked <- struct{}{}
}

// yield parks the process and waits to be resumed. It panics with
// killedError when the engine is shutting down.
func (p *Proc) yield() {
	p.e.parked <- struct{}{}
	if !<-p.resume {
		panic(killedError{})
	}
}

// block parks the process with no scheduled wake-up; some other process (or
// an engine callback) must call unblock. reason is reported on deadlock.
func (p *Proc) block(reason string) {
	p.e.blocked[p] = reason
	p.yield()
}

// unblock schedules p to resume at the current virtual time. Unblocking a
// process that is not currently blocked is a no-op; this guards against
// double wake-ups (e.g. two Releases racing ahead of the head waiter).
func (e *Engine) unblock(p *Proc) {
	if _, ok := e.blocked[p]; !ok {
		return
	}
	delete(e.blocked, p)
	e.schedule(e.now, p, nil)
}

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (yield to same-time events scheduled earlier).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.e.schedule(p.e.now+d, p, nil)
	p.yield()
}

// Run executes events until none remain, Stop is called, or a deadlock is
// detected. It returns ErrDeadlock (wrapped, with the blocked process names)
// if processes remain blocked with no pending events.
func (e *Engine) Run() error {
	return e.run(-1)
}

// RunUntil executes events with timestamps <= horizon, then stops the
// simulation (killing remaining processes). A negative horizon means no
// limit.
func (e *Engine) RunUntil(horizon time.Duration) error {
	return e.run(horizon)
}

func (e *Engine) run(horizon time.Duration) error {
	for len(e.events) > 0 && !e.stopped {
		if horizon >= 0 && e.events[0].at > horizon {
			e.now = horizon
			break
		}
		ev := e.events.pop()
		e.now = ev.at
		switch {
		case ev.fn != nil:
			ev.fn()
		case ev.p != nil && !ev.p.done:
			ev.p.resume <- true
			<-e.parked
		}
	}
	deadlocked := !e.stopped && horizon < 0 && len(e.blocked) > 0
	var names []string
	if deadlocked {
		for p, reason := range e.blocked {
			names = append(names, fmt.Sprintf("%s (%s)", p.name, reason))
		}
		sort.Strings(names)
	}
	e.shutdown()
	if deadlocked {
		return fmt.Errorf("%w: %s", ErrDeadlock, strings.Join(names, ", "))
	}
	return nil
}

// shutdown kills every process that has not finished so no goroutines leak.
func (e *Engine) shutdown() {
	e.stopped = true
	for _, p := range e.procs {
		if !p.done {
			p.resume <- false
			<-e.parked
		}
	}
	e.events = e.events[:0]
	e.blocked = map[*Proc]string{}
}
