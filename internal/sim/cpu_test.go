package sim

import (
	"testing"
	"time"
)

func TestCPUSingleJob(t *testing.T) {
	e := New(1)
	cpu := NewCPU(e, 4)
	var done time.Duration
	e.Spawn("job", func(p *Proc) {
		cpu.Run(p, 10*time.Millisecond)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done < 10*time.Millisecond || done > 10*time.Millisecond+time.Microsecond {
		t.Errorf("job finished at %v, want ~10ms", done)
	}
}

func TestCPUZeroDemand(t *testing.T) {
	e := New(1)
	cpu := NewCPU(e, 1)
	e.Spawn("job", func(p *Proc) {
		cpu.Run(p, 0)
		if p.Now() != 0 {
			t.Errorf("zero demand advanced clock to %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCPUNoContentionUnderCapacity(t *testing.T) {
	// 4 jobs on 4 cores: all finish at their own demand.
	e := New(1)
	cpu := NewCPU(e, 4)
	var ends [4]time.Duration
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn("job", func(p *Proc) {
			cpu.Run(p, time.Duration(i+1)*time.Millisecond)
			ends[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, end := range ends {
		want := time.Duration(i+1) * time.Millisecond
		if diff := end - want; diff < -time.Microsecond || diff > time.Microsecond {
			t.Errorf("job %d finished at %v, want %v", i, end, want)
		}
	}
}

func TestCPUProcessorSharing(t *testing.T) {
	// 2 equal jobs on 1 core: each takes twice its demand.
	e := New(1)
	cpu := NewCPU(e, 1)
	var ends [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("job", func(p *Proc) {
			cpu.Run(p, 10*time.Millisecond)
			ends[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, end := range ends {
		if diff := end - 20*time.Millisecond; diff < -10*time.Microsecond || diff > 10*time.Microsecond {
			t.Errorf("job %d finished at %v, want ~20ms", i, end)
		}
	}
}

func TestCPULateArrivalSharing(t *testing.T) {
	// Job A (demand 10ms) starts at 0 on 1 core; job B (demand 5ms) arrives
	// at 5ms. A runs alone 0-5ms (5ms done), then shares: A needs 5ms more at
	// half rate -> done at 15ms. B needs 5ms at half rate -> done at 15ms.
	e := New(1)
	cpu := NewCPU(e, 1)
	var endA, endB time.Duration
	e.Spawn("a", func(p *Proc) {
		cpu.Run(p, 10*time.Millisecond)
		endA = p.Now()
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		cpu.Run(p, 5*time.Millisecond)
		endB = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx := func(got, want time.Duration) bool {
		d := got - want
		return d > -50*time.Microsecond && d < 50*time.Microsecond
	}
	if !approx(endA, 15*time.Millisecond) {
		t.Errorf("A finished at %v, want ~15ms", endA)
	}
	if !approx(endB, 15*time.Millisecond) {
		t.Errorf("B finished at %v, want ~15ms", endB)
	}
}

func TestCPUUtilization(t *testing.T) {
	e := New(1)
	cpu := NewCPU(e, 2)
	var util float64
	e.Spawn("job", func(p *Proc) {
		cpu.Run(p, 10*time.Millisecond) // 1 of 2 cores busy for 10ms
	})
	e.Spawn("probe", func(p *Proc) {
		p.Sleep(20 * time.Millisecond)
		util = cpu.UtilizationTotal()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 core busy for 10ms out of 2 cores * 20ms = 0.25.
	if util < 0.24 || util > 0.26 {
		t.Errorf("total utilization = %v, want ~0.25", util)
	}
}

func TestCPUUtilizationWindowResets(t *testing.T) {
	e := New(1)
	cpu := NewCPU(e, 1)
	var w1, w2 float64
	e.Spawn("job", func(p *Proc) {
		cpu.Run(p, 10*time.Millisecond)
	})
	e.Spawn("probe", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		w1 = cpu.UtilizationWindow()
		p.Sleep(10 * time.Millisecond)
		w2 = cpu.UtilizationWindow()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if w1 < 0.95 {
		t.Errorf("first window = %v, want ~1", w1)
	}
	if w2 > 0.05 {
		t.Errorf("second window = %v, want ~0", w2)
	}
}

func TestCPUSubmitOverlaps(t *testing.T) {
	e := New(1)
	cpu := NewCPU(e, 1)
	var procEnd time.Duration
	e.Spawn("p", func(p *Proc) {
		fut := cpu.Submit(5 * time.Millisecond)
		p.Sleep(time.Millisecond) // caller proceeds while work runs
		procEnd = p.Now()
		fut.Wait(p)
		if p.Now() < 5*time.Millisecond {
			t.Errorf("submitted work done too early: %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if procEnd != time.Millisecond {
		t.Errorf("caller blocked by Submit: %v", procEnd)
	}
}

func TestPollCPUIdleLowDelay(t *testing.T) {
	// One thread on one core, idle: only service time, no tax or phase.
	e := New(1)
	cpu := NewPollCPU(e, 1, 20*time.Microsecond)
	th := cpu.Register()
	var end time.Duration
	e.Spawn("req", func(p *Proc) {
		th.Process(p, 100*time.Microsecond)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 100*time.Microsecond {
		t.Errorf("single-thread process took %v, want 100µs", end)
	}
}

func TestPollCPUTaxGrowsWithThreads(t *testing.T) {
	// With many threads per core, per-request poll tax grows linearly and
	// queueing compounds it: latency must grow superlinearly vs the
	// single-thread case.
	latency := func(threads int) time.Duration {
		e := New(1)
		cpu := NewPollCPU(e, 1, 20*time.Microsecond)
		var total time.Duration
		wg := NewWaitGroup(e)
		wg.Add(threads)
		for i := 0; i < threads; i++ {
			th := cpu.Register()
			e.Spawn("client", func(p *Proc) {
				start := p.Now()
				th.Process(p, 100*time.Microsecond)
				total += p.Now() - start
				wg.Done()
			})
		}
		e.Spawn("waiter", func(p *Proc) {
			wg.Wait(p)
			p.Engine().Stop()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return total / time.Duration(threads)
	}
	l1, l8 := latency(1), latency(8)
	if l8 < 4*l1 {
		t.Errorf("poll latency did not blow up: 1 thread %v, 8 threads %v", l1, l8)
	}
}

func TestPollCPUFIFOOrder(t *testing.T) {
	e := New(1)
	cpu := NewPollCPU(e, 1, 0)
	t1 := cpu.Register()
	t2 := cpu.Register()
	var order []int
	e.Spawn("a", func(p *Proc) {
		t1.Process(p, time.Millisecond)
		order = append(order, 1)
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(time.Microsecond)
		t2.Process(p, time.Millisecond)
		order = append(order, 2)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("order = %v, want [1 2]", order)
	}
}

func TestPollCPUUtilization(t *testing.T) {
	e := New(1)
	cpu := NewPollCPU(e, 2, 0)
	if cpu.UtilizationWindow() != 0 {
		t.Error("no threads yet, utilization should be 0")
	}
	th := cpu.Register()
	if cpu.UtilizationWindow() != 1.0 {
		t.Error("registered polling thread should peg utilization at 1")
	}
	e.Spawn("req", func(p *Proc) {
		th.Process(p, 10*time.Millisecond)
		p.Sleep(10 * time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	useful := cpu.UsefulUtilizationTotal()
	// 1 core busy 10ms of 2 cores * 20ms = 0.25.
	if useful < 0.2 || useful > 0.3 {
		t.Errorf("useful utilization = %v, want ~0.25", useful)
	}
}

func TestPipeSerializes(t *testing.T) {
	p := NewPipe(8e9) // 8 Gbps = 1 GB/s
	d1 := p.Reserve(0, 1_000_000)
	if d1 != time.Millisecond {
		t.Errorf("first transfer done at %v, want 1ms", d1)
	}
	// Second transfer queued behind the first.
	d2 := p.Reserve(0, 1_000_000)
	if d2 != 2*time.Millisecond {
		t.Errorf("second transfer done at %v, want 2ms", d2)
	}
	// A transfer arriving after the pipe is free starts immediately.
	d3 := p.Reserve(5*time.Millisecond, 1_000_000)
	if d3 != 6*time.Millisecond {
		t.Errorf("third transfer done at %v, want 6ms", d3)
	}
	if p.Bytes() != 3_000_000 {
		t.Errorf("bytes = %d", p.Bytes())
	}
}

func TestPipeGbps(t *testing.T) {
	p := NewPipe(1e9)
	p.Reserve(0, 125_000_000) // 1 Gbit
	got := p.Gbps(time.Second)
	if got < 0.99 || got > 1.01 {
		t.Errorf("Gbps = %v, want 1", got)
	}
}

func BenchmarkEngineHandoff(b *testing.B) {
	e := New(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Nanosecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkCPUPS(b *testing.B) {
	e := New(1)
	cpu := NewCPU(e, 8)
	for c := 0; c < 32; c++ {
		e.Spawn("c", func(p *Proc) {
			for i := 0; i < b.N/32+1; i++ {
				cpu.Run(p, time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
