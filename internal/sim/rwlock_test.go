package sim

import (
	"testing"
	"time"
)

func TestRWLockReadersShare(t *testing.T) {
	e := New(1)
	l := NewRWLock(e)
	var maxConcurrent, current int
	for i := 0; i < 5; i++ {
		e.Spawn("reader", func(p *Proc) {
			l.RLock(p)
			current++
			if current > maxConcurrent {
				maxConcurrent = current
			}
			p.Sleep(time.Millisecond)
			current--
			l.RUnlock()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxConcurrent != 5 {
		t.Errorf("max concurrent readers = %d, want 5", maxConcurrent)
	}
}

func TestRWLockWriterExcludes(t *testing.T) {
	e := New(1)
	l := NewRWLock(e)
	var order []string
	e.Spawn("writer", func(p *Proc) {
		l.Lock(p)
		order = append(order, "w+")
		p.Sleep(10 * time.Millisecond)
		order = append(order, "w-")
		l.Unlock()
	})
	e.Spawn("reader", func(p *Proc) {
		p.Sleep(time.Millisecond) // arrive while the writer holds it
		l.RLock(p)
		order = append(order, "r")
		l.RUnlock()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w+", "w-", "r"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRWLockWriterNotStarved(t *testing.T) {
	// FIFO fairness: a writer that arrives while readers hold the lock gets
	// in before readers that arrive after it.
	e := New(1)
	l := NewRWLock(e)
	var order []string
	e.Spawn("early-reader", func(p *Proc) {
		l.RLock(p)
		p.Sleep(5 * time.Millisecond)
		l.RUnlock()
	})
	e.Spawn("writer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		l.Lock(p)
		order = append(order, "w")
		l.Unlock()
	})
	e.Spawn("late-reader", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		l.RLock(p)
		order = append(order, "r")
		l.RUnlock()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "w" || order[1] != "r" {
		t.Fatalf("order = %v, want [w r]", order)
	}
}
