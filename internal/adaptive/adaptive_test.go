package adaptive

import (
	"math/rand"
	"testing"
	"time"
)

// harness drives a Switch against a scripted heartbeat mailbox.
type harness struct {
	sw  *Switch
	now time.Duration
	hb  float64
}

func newHarness(cfg Config) *harness {
	return &harness{sw: New(cfg, rand.New(rand.NewSource(1)))}
}

func (h *harness) tick(d time.Duration) { h.now += d }

func (h *harness) decide() bool {
	return h.sw.Decide(h.now, func() float64 { return h.hb }, func() { h.hb = 0 })
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.N != 8 || cfg.T != 0.95 || cfg.Inv != 10*time.Millisecond {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestIdleNeverOffloads(t *testing.T) {
	h := newHarness(Config{Inv: time.Millisecond})
	for i := 0; i < 100; i++ {
		h.tick(2 * time.Millisecond)
		h.hb = 0.5
		if h.decide() {
			t.Fatalf("step %d: offloaded with 50%% utilization", i)
		}
	}
}

func TestWindowGrowthUnderSustainedLoad(t *testing.T) {
	h := newHarness(Config{N: 8, Inv: time.Millisecond})
	maxRoff := 0
	for round := 0; round < 10; round++ {
		h.tick(2 * time.Millisecond)
		h.hb = 1.0
		h.decide()
		_, roff := h.sw.State()
		if roff > maxRoff {
			maxRoff = roff
		}
		// Drain only part of the window so the streak keeps extending.
		for i := 0; i < 3; i++ {
			h.decide()
		}
	}
	if maxRoff < 8 {
		t.Errorf("max roff = %d, want window beyond [0, N)", maxRoff)
	}
	if h.sw.HeartbeatsSeen != 10 {
		t.Errorf("heartbeats seen = %d", h.sw.HeartbeatsSeen)
	}
}

func TestHeartbeatGateRespectsInv(t *testing.T) {
	h := newHarness(Config{Inv: 10 * time.Millisecond})
	h.tick(time.Millisecond) // before the first interval elapses
	h.hb = 1.0
	h.decide()
	if h.hb == 0 {
		t.Error("heartbeat consumed before Inv elapsed")
	}
	h.tick(10 * time.Millisecond)
	h.decide()
	if h.hb != 0 {
		t.Error("heartbeat not consumed after Inv elapsed")
	}
}

func TestEWMAPredictor(t *testing.T) {
	sw := New(Config{PredSmoothing: 0.5}, rand.New(rand.NewSource(2)))
	if got := sw.predict(1.0); got != 1.0 {
		t.Errorf("seed = %v", got)
	}
	if got := sw.predict(0.0); got != 0.5 {
		t.Errorf("second = %v", got)
	}
	if got := sw.predict(1.0); got != 0.75 {
		t.Errorf("third = %v", got)
	}
	clamped := New(Config{PredSmoothing: 9}, rand.New(rand.NewSource(3)))
	clamped.predict(0.3)
	if got := clamped.predict(0.9); got != 0.9 {
		t.Errorf("clamped = %v, want raw latest", got)
	}
	raw := New(Config{}, rand.New(rand.NewSource(4)))
	if got := raw.predict(0.42); got != 0.42 {
		t.Errorf("paper predictor = %v", got)
	}
}

func TestEWMADampsSpike(t *testing.T) {
	h := newHarness(Config{Inv: time.Millisecond, PredSmoothing: 0.3, T: 0.95})
	for i := 0; i < 5; i++ {
		h.tick(2 * time.Millisecond)
		h.hb = 0.2
		h.decide()
	}
	h.tick(2 * time.Millisecond)
	h.hb = 1.0 // one spike: EWMA stays well under T
	if h.decide() {
		t.Error("single spike triggered offloading through the EWMA")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() []bool {
		h := &harness{sw: New(Config{N: 8, Inv: time.Millisecond}, rand.New(rand.NewSource(7)))}
		var out []bool
		for i := 0; i < 200; i++ {
			h.tick(time.Millisecond)
			if i%3 == 0 {
				h.hb = 1.0
			}
			out = append(out, h.decide())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at step %d", i)
		}
	}
}
