// Package adaptive implements the client module of the paper's Algorithm 1
// as a reusable state machine, so every Catfish-style client — the R-tree
// client, the KV client, or any future link-based structure (§VI) — runs
// the identical back-off policy.
//
// The server module periodically writes its CPU utilization into a
// per-client mailbox; the client consults the mailbox before each read
// request. When the predicted utilization exceeds the threshold T, the
// client offloads its next n ∈ [0, N) requests, extending the window to
// [(k−1)·N, k·N) across k consecutive busy observations, randomized so the
// client fleet neither stampedes off the server nor returns all at once.
//
// One deliberate deviation from the paper's pseudocode: the busy-streak
// counter r_busy is only re-evaluated when a fresh heartbeat has been
// consumed. Read literally, Algorithm 1's lines 12-17 reset r_busy on
// every request arriving between heartbeats (where U = 0), which would cap
// the window at [0, N) forever, contradicting §IV-A's prose; gating the
// update on heartbeat arrival implements the described behaviour.
package adaptive

import (
	"math"
	"math/rand"
	"sync/atomic"
	"time"
)

// Config parametrizes the switch.
type Config struct {
	// N is the back-off window unit (paper: 8).
	N int
	// T is the busy threshold on predicted utilization (paper: 0.95).
	T float64
	// Inv is the heartbeat interval agreed with the server (paper: 10 ms).
	Inv time.Duration
	// PredSmoothing > 0 selects an EWMA predictor with coefficient α;
	// zero selects the paper's most-recent-value predictor.
	PredSmoothing float64
	// EnableFetch arms the third method: when the request is not inside an
	// offload window and the predicted server TX (send-engine) utilization
	// exceeds TxT, DecideMethod returns ChooseFetch. With EnableFetch false
	// the switch is bit-for-bit the binary Algorithm 1 policy — the fetch
	// branch consumes no randomness and touches none of the back-off state.
	EnableFetch bool
	// TxT is the busy threshold on predicted TX utilization (default 0.8).
	TxT float64
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 8
	}
	if c.T == 0 {
		c.T = 0.95
	}
	if c.Inv == 0 {
		c.Inv = 10 * time.Millisecond
	}
	if c.TxT == 0 {
		c.TxT = 0.8
	}
	return c
}

// Choice is a 3-way access-method decision.
type Choice int

// The three access methods, in decision priority order: an open offload
// window always wins (CPU saturation is the paper's primary signal); fetch
// engages only when the CPU side is calm but the server's send engine is
// the predicted bottleneck.
const (
	ChooseFast Choice = iota
	ChooseOffload
	ChooseFetch
)

func (c Choice) String() string {
	switch c {
	case ChooseOffload:
		return "offload"
	case ChooseFetch:
		return "fetch"
	default:
		return "fast"
	}
}

// Switch is the per-client Algorithm 1 state. Not safe for concurrent use.
type Switch struct {
	cfg Config
	rng *rand.Rand

	rbusy int
	roff  int
	t0    time.Duration
	pred  float64

	// predBits mirrors pred (or, without smoothing, the latest consumed
	// heartbeat) as atomic float64 bits so telemetry scrapers can read the
	// prediction without racing Decide.
	predBits atomic.Uint64

	// predTX / predTXBits are the TX-utilization twin of pred/predBits,
	// fed by the heartbeat's TX word.
	predTX     float64
	predTXBits atomic.Uint64

	// HeartbeatsSeen counts consumed heartbeats.
	HeartbeatsSeen uint64
}

// New returns a switch with the given configuration and randomness source.
func New(cfg Config, rng *rand.Rand) *Switch {
	return &Switch{cfg: cfg.withDefaults(), rng: rng}
}

// Decide returns true when the next read request should be offloaded.
// now is the current (virtual or wall-clock) time; readHB returns the
// mailbox utilization (0 = no heartbeat, per the paper's u_serv ≠ 0
// check) and clearHB performs the paper's memset(u_serv, 0).
func (s *Switch) Decide(now time.Duration, readHB func() float64, clearHB func()) bool {
	return s.DecideMethod(now, func() (float64, float64) { return readHB(), 0 }, clearHB) == ChooseOffload
}

// DecideMethod is the 3-way extension of Decide: readHB additionally
// returns the heartbeat's TX-utilization word (0 when the server predates
// the widened mailbox). The CPU-side back-off machinery is byte-identical
// to Decide — same heartbeat gate, same predictor, same randomized window —
// so with EnableFetch false (or a TX word that never crosses TxT) the
// decision sequence is bit-for-bit the binary baseline. The fetch branch
// is deterministic: it consumes no randomness, so arming it cannot perturb
// the offload windows either.
func (s *Switch) DecideMethod(now time.Duration, readHB func() (cpu, tx float64), clearHB func()) Choice {
	s.consumeHeartbeat(now, readHB, clearHB)
	if s.roff > 0 {
		s.roff--
		return ChooseOffload
	}
	if s.cfg.EnableFetch && s.PredictedTX() > s.cfg.TxT {
		return ChooseFetch
	}
	return ChooseFast
}

// DecideServerSide is the decision path for operations that cannot be
// offloaded — best-first kNN, where every heap pop depends on all previous
// pops, so a client-side traversal would degenerate into one dependent
// chunk read per visited node (see DESIGN.md §5.13). It runs the same
// heartbeat consumption and window bookkeeping as DecideMethod, so the
// switch's view of server load stays current, but it never opens, consumes,
// or returns an offload window: a pinned operation arriving inside an open
// window leaves the window intact for the next search. The only choice left
// is fetch vs fast, by the same deterministic TX test as DecideMethod.
func (s *Switch) DecideServerSide(now time.Duration, readHB func() (cpu, tx float64), clearHB func()) Choice {
	s.consumeHeartbeat(now, readHB, clearHB)
	if s.cfg.EnableFetch && s.PredictedTX() > s.cfg.TxT {
		return ChooseFetch
	}
	return ChooseFast
}

// consumeHeartbeat is Algorithm 1's lines 12-17 (heartbeat-gated, see the
// package comment): consume at most one fresh heartbeat per interval and
// update the predictor and the randomized back-off window.
func (s *Switch) consumeHeartbeat(now time.Duration, readHB func() (cpu, tx float64), clearHB func()) {
	if now-s.t0 > s.cfg.Inv {
		if u, utx := readHB(); u != 0 {
			atomic.AddUint64(&s.HeartbeatsSeen, 1)
			util := s.predict(u)
			s.predictTX(utx)
			clearHB()
			s.t0 = now
			if util > s.cfg.T && s.roff <= s.rbusy*s.cfg.N {
				s.rbusy++
				s.roff = s.rng.Intn(s.cfg.N) + (s.rbusy-1)*s.cfg.N
			} else {
				s.rbusy = 0
			}
		}
	}
}

// predict applies the configured utilization predictor.
func (s *Switch) predict(latest float64) float64 {
	a := s.cfg.PredSmoothing
	if a <= 0 {
		s.predBits.Store(math.Float64bits(latest))
		return latest
	}
	if a > 1 {
		a = 1
	}
	if s.pred == 0 {
		s.pred = latest
	} else {
		s.pred = a*latest + (1-a)*s.pred
	}
	s.predBits.Store(math.Float64bits(s.pred))
	return s.pred
}

// predictTX applies the same predictor to the TX-utilization word.
func (s *Switch) predictTX(latest float64) {
	a := s.cfg.PredSmoothing
	if a <= 0 {
		s.predTXBits.Store(math.Float64bits(latest))
		return
	}
	if a > 1 {
		a = 1
	}
	if s.predTX == 0 {
		s.predTX = latest
	} else {
		s.predTX = a*latest + (1-a)*s.predTX
	}
	s.predTXBits.Store(math.Float64bits(s.predTX))
}

// PredictedUtil returns the utilization prediction used by the most recent
// consumed heartbeat (0 before any heartbeat). Unlike the rest of the
// switch it is safe to call concurrently with Decide, so telemetry gauges
// can sample it live.
func (s *Switch) PredictedUtil() float64 {
	return math.Float64frombits(s.predBits.Load())
}

// PredictedTX returns the TX-utilization prediction from the most recent
// consumed heartbeat (0 before any heartbeat, and always 0 against servers
// whose heartbeats predate the TX word). Safe to call concurrently.
func (s *Switch) PredictedTX() float64 {
	return math.Float64frombits(s.predTXBits.Load())
}

// State exposes the back-off counters for tests and instrumentation.
func (s *Switch) State() (rbusy, roff int) { return s.rbusy, s.roff }
