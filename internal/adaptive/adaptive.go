// Package adaptive implements the client module of the paper's Algorithm 1
// as a reusable state machine, so every Catfish-style client — the R-tree
// client, the KV client, or any future link-based structure (§VI) — runs
// the identical back-off policy.
//
// The server module periodically writes its CPU utilization into a
// per-client mailbox; the client consults the mailbox before each read
// request. When the predicted utilization exceeds the threshold T, the
// client offloads its next n ∈ [0, N) requests, extending the window to
// [(k−1)·N, k·N) across k consecutive busy observations, randomized so the
// client fleet neither stampedes off the server nor returns all at once.
//
// One deliberate deviation from the paper's pseudocode: the busy-streak
// counter r_busy is only re-evaluated when a fresh heartbeat has been
// consumed. Read literally, Algorithm 1's lines 12-17 reset r_busy on
// every request arriving between heartbeats (where U = 0), which would cap
// the window at [0, N) forever, contradicting §IV-A's prose; gating the
// update on heartbeat arrival implements the described behaviour.
package adaptive

import (
	"math"
	"math/rand"
	"sync/atomic"
	"time"
)

// Config parametrizes the switch.
type Config struct {
	// N is the back-off window unit (paper: 8).
	N int
	// T is the busy threshold on predicted utilization (paper: 0.95).
	T float64
	// Inv is the heartbeat interval agreed with the server (paper: 10 ms).
	Inv time.Duration
	// PredSmoothing > 0 selects an EWMA predictor with coefficient α;
	// zero selects the paper's most-recent-value predictor.
	PredSmoothing float64
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 8
	}
	if c.T == 0 {
		c.T = 0.95
	}
	if c.Inv == 0 {
		c.Inv = 10 * time.Millisecond
	}
	return c
}

// Switch is the per-client Algorithm 1 state. Not safe for concurrent use.
type Switch struct {
	cfg Config
	rng *rand.Rand

	rbusy int
	roff  int
	t0    time.Duration
	pred  float64

	// predBits mirrors pred (or, without smoothing, the latest consumed
	// heartbeat) as atomic float64 bits so telemetry scrapers can read the
	// prediction without racing Decide.
	predBits atomic.Uint64

	// HeartbeatsSeen counts consumed heartbeats.
	HeartbeatsSeen uint64
}

// New returns a switch with the given configuration and randomness source.
func New(cfg Config, rng *rand.Rand) *Switch {
	return &Switch{cfg: cfg.withDefaults(), rng: rng}
}

// Decide returns true when the next read request should be offloaded.
// now is the current (virtual or wall-clock) time; readHB returns the
// mailbox utilization (0 = no heartbeat, per the paper's u_serv ≠ 0
// check) and clearHB performs the paper's memset(u_serv, 0).
func (s *Switch) Decide(now time.Duration, readHB func() float64, clearHB func()) bool {
	if now-s.t0 > s.cfg.Inv {
		if u := readHB(); u != 0 {
			atomic.AddUint64(&s.HeartbeatsSeen, 1)
			util := s.predict(u)
			clearHB()
			s.t0 = now
			if util > s.cfg.T && s.roff <= s.rbusy*s.cfg.N {
				s.rbusy++
				s.roff = s.rng.Intn(s.cfg.N) + (s.rbusy-1)*s.cfg.N
			} else {
				s.rbusy = 0
			}
		}
	}
	if s.roff > 0 {
		s.roff--
		return true
	}
	return false
}

// predict applies the configured utilization predictor.
func (s *Switch) predict(latest float64) float64 {
	a := s.cfg.PredSmoothing
	if a <= 0 {
		s.predBits.Store(math.Float64bits(latest))
		return latest
	}
	if a > 1 {
		a = 1
	}
	if s.pred == 0 {
		s.pred = latest
	} else {
		s.pred = a*latest + (1-a)*s.pred
	}
	s.predBits.Store(math.Float64bits(s.pred))
	return s.pred
}

// PredictedUtil returns the utilization prediction used by the most recent
// consumed heartbeat (0 before any heartbeat). Unlike the rest of the
// switch it is safe to call concurrently with Decide, so telemetry gauges
// can sample it live.
func (s *Switch) PredictedUtil() float64 {
	return math.Float64frombits(s.predBits.Load())
}

// State exposes the back-off counters for tests and instrumentation.
func (s *Switch) State() (rbusy, roff int) { return s.rbusy, s.roff }
