// Package autoscale is the telemetry-driven shard autoscaler (DESIGN.md
// §5.12): a control loop scrapes every shard's /metrics endpoint for the
// heartbeat utilization gauges, computes a utilization-based desired shard
// count, and — when a shard pegs past the scale-up threshold — drives the
// deployment through the live-resharding path (PrepareReshard →
// CommitReshard → DrainSplit) to split the hottest shard. Scaling is
// split-only: cells subdivide under load and stay subdivided, so the
// desired K is monotone within a run.
//
// The loop is deliberately split into pure pieces — Scraper (observation),
// Decide (policy), Actuator (actuation) — so the policy is unit-testable
// without sockets and the actuator is swappable between an in-process
// split (bench, cmd/catfish-server -autoscale) and an operator-driven one.
package autoscale

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Sample is one shard's scraped utilization observation. Util and TXUtil
// mirror the catfish_server_utilization and catfish_server_tx_utilization
// gauges — the same EWMA'd heartbeat words Algorithm 1 and the admission
// controller consume, so the autoscaler reacts to exactly the signal that
// makes servers shed.
type Sample struct {
	Shard  int
	Util   float64
	TXUtil float64
	Err    error // scrape failure; Util/TXUtil are meaningless when set
}

// Peak is the sample's binding utilization: the larger of CPU and TX.
func (s Sample) Peak() float64 { return math.Max(s.Util, s.TXUtil) }

// Scraper observes the current utilization of every shard, in shard order.
type Scraper interface {
	Scrape() ([]Sample, error)
}

// HTTPScraper scrapes Prometheus text /metrics endpoints, one per shard.
type HTTPScraper struct {
	// URLs holds one metrics endpoint per shard, in shard order (e.g.
	// "http://10.0.0.1:9090/metrics").
	URLs []string
	// Client overrides http.DefaultClient (set a Timeout in production).
	Client *http.Client
}

// Scrape fetches every endpoint; per-shard failures are recorded in the
// sample rather than failing the sweep, so one dead scrape target does not
// blind the controller to the others.
func (h *HTTPScraper) Scrape() ([]Sample, error) {
	if len(h.URLs) == 0 {
		return nil, errors.New("autoscale: no scrape targets")
	}
	cli := h.Client
	if cli == nil {
		cli = http.DefaultClient
	}
	out := make([]Sample, len(h.URLs))
	for i, url := range h.URLs {
		out[i].Shard = i
		resp, err := cli.Get(url)
		if err != nil {
			out[i].Err = err
			continue
		}
		u, tx, perr := ParseUtilization(resp.Body)
		resp.Body.Close()
		if perr != nil {
			out[i].Err = perr
			continue
		}
		out[i].Util, out[i].TXUtil = u, tx
	}
	return out, nil
}

// ParseUtilization extracts the utilization gauges from a Prometheus text
// (0.0.4) exposition. Labelled variants ({shard="0"} etc.) are accepted;
// a missing gauge reads as 0 (servers without heartbeats never move it).
func ParseUtilization(r io.Reader) (util, tx float64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		name, val, ok := splitSeries(line)
		if !ok {
			continue
		}
		switch name {
		case "catfish_server_utilization":
			util = val
		case "catfish_server_tx_utilization":
			tx = val
		}
	}
	return util, tx, sc.Err()
}

// splitSeries parses one exposition line into its base metric name
// (labels stripped) and value.
func splitSeries(line string) (name string, val float64, ok bool) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
	if err != nil {
		return "", 0, false
	}
	name = line[:sp]
	if br := strings.IndexByte(name, '{'); br >= 0 {
		name = name[:br]
	}
	return name, v, true
}

// PolicyConfig tunes the scaling policy.
type PolicyConfig struct {
	// TargetUtil is the steady-state per-shard utilization the desired-K
	// computation aims for (default 0.6): desiredK = ceil(total binding
	// utilization / TargetUtil), never below the current K.
	TargetUtil float64
	// ScaleUpUtil is the peak (CPU or TX) utilization past which the
	// hottest shard is split (default 0.8) — the same order as the
	// server's admission threshold, so the autoscaler relieves pressure
	// before sustained shedding sets in.
	ScaleUpUtil float64
	// MaxK caps the shard count (default 8); at the cap the controller
	// observes but never splits.
	MaxK int
	// Cooldown is the minimum time between splits (default 0 = every
	// tick may split). A split shifts load gradually — routers adopt the
	// map on their next heartbeat — so back-to-back splits on stale
	// utilization overshoot without a cooldown.
	Cooldown time.Duration
	// TXOnly scales on the TX-utilization gauge alone, ignoring CPU.
	// Set it when the deployment's capacity dimension is the NIC: on a
	// box whose cores are shared with co-located shards (or the load
	// generator), the CPU gauge reflects machine-wide contention, and
	// letting it nominate the "hottest" shard picks one at random.
	TXOnly bool
}

func (c PolicyConfig) withDefaults() PolicyConfig {
	if c.TargetUtil <= 0 {
		c.TargetUtil = 0.6
	}
	if c.ScaleUpUtil <= 0 {
		c.ScaleUpUtil = 0.8
	}
	if c.MaxK <= 0 {
		c.MaxK = 8
	}
	return c
}

// Decision is one tick's policy output.
type Decision struct {
	// DesiredK is the utilization-based desired shard count.
	DesiredK int
	// Split is the index of the shard to split, or -1 to hold.
	Split int
	// Peak is the binding utilization of the hottest shard.
	Peak float64
}

// Decide computes the scaling decision for one scrape sweep. Errored
// samples are treated as utilization-unknown and never nominated for a
// split (splitting a shard we cannot observe is how feedback loops run
// away).
func Decide(cfg PolicyConfig, samples []Sample) Decision {
	cfg = cfg.withDefaults()
	d := Decision{Split: -1}
	k := len(samples)
	if k == 0 {
		return d
	}
	total := 0.0
	hot := -1
	for i, s := range samples {
		if s.Err != nil {
			continue
		}
		p := s.Peak()
		if cfg.TXOnly {
			p = s.TXUtil
		}
		total += p
		if p > d.Peak {
			d.Peak = p
			hot = i
		}
	}
	d.DesiredK = int(math.Ceil(total / cfg.TargetUtil))
	if d.DesiredK < k {
		d.DesiredK = k
	}
	if d.DesiredK > cfg.MaxK {
		d.DesiredK = cfg.MaxK
	}
	if hot >= 0 && d.Peak >= cfg.ScaleUpUtil && k < cfg.MaxK {
		d.Split = hot
	}
	return d
}

// Actuator carries out a split decision: subdivide shard s via the live
// resharding path, returning the new shard count.
type Actuator interface {
	Split(s int) (int, error)
}

// Stats counts the controller's activity (atomic; safe to read from any
// goroutine while the loop runs).
type Stats struct {
	Ticks      uint64
	Splits     uint64
	ScrapeErrs uint64
	SplitErrs  uint64
}

// Controller is the control loop: scrape → decide → actuate, with a split
// cooldown. Tick is the testable single step; Run drives it on a timer.
type Controller struct {
	cfg PolicyConfig
	scr Scraper
	act Actuator

	lastSplit time.Time
	desiredK  atomic.Int64

	ticks, splits, scrapeErrs, splitErrs atomic.Uint64
}

// NewController wires a scraper and an actuator under a policy.
func NewController(scr Scraper, act Actuator, cfg PolicyConfig) *Controller {
	return &Controller{cfg: cfg.withDefaults(), scr: scr, act: act}
}

// DesiredK returns the most recent tick's desired shard count (a metrics
// hook; 0 before the first tick).
func (c *Controller) DesiredK() int { return int(c.desiredK.Load()) }

// Stats snapshots the controller's counters.
func (c *Controller) Stats() Stats {
	return Stats{
		Ticks:      c.ticks.Load(),
		Splits:     c.splits.Load(),
		ScrapeErrs: c.scrapeErrs.Load(),
		SplitErrs:  c.splitErrs.Load(),
	}
}

// Tick runs one scrape-decide-actuate step at the given time. The returned
// decision reflects the policy before cooldown gating; the error reports a
// scrape or split failure (the loop keeps running through both).
func (c *Controller) Tick(now time.Time) (Decision, error) {
	c.ticks.Add(1)
	samples, err := c.scr.Scrape()
	if err != nil {
		c.scrapeErrs.Add(1)
		return Decision{Split: -1}, err
	}
	d := Decide(c.cfg, samples)
	c.desiredK.Store(int64(d.DesiredK))
	if d.Split < 0 {
		return d, nil
	}
	if c.cfg.Cooldown > 0 && !c.lastSplit.IsZero() && now.Sub(c.lastSplit) < c.cfg.Cooldown {
		return d, nil
	}
	if _, err := c.act.Split(d.Split); err != nil {
		c.splitErrs.Add(1)
		return d, fmt.Errorf("autoscale: split shard %d: %w", d.Split, err)
	}
	c.lastSplit = now
	c.splits.Add(1)
	return d, nil
}

// Run ticks the controller every interval until stop closes. Scrape and
// split errors do not stop the loop — an autoscaler that dies on one bad
// scrape is worse than no autoscaler.
func (c *Controller) Run(stop <-chan struct{}, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			_, _ = c.Tick(now)
		}
	}
}
