package autoscale

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseUtilization(t *testing.T) {
	exposition := `# TYPE catfish_server_utilization gauge
catfish_server_utilization 0.42
# TYPE catfish_server_tx_utilization gauge
catfish_server_tx_utilization 0.17
# TYPE catfish_server_searches_total counter
catfish_server_searches_total 12345
`
	u, tx, err := ParseUtilization(strings.NewReader(exposition))
	if err != nil {
		t.Fatal(err)
	}
	if u != 0.42 || tx != 0.17 {
		t.Fatalf("parsed util=%g tx=%g, want 0.42 0.17", u, tx)
	}

	// Labelled series (a registry shared with per-shard labels) parse too.
	labelled := `catfish_server_utilization{shard="3"} 0.9
catfish_server_tx_utilization{shard="3"} 0.5
`
	u, tx, err = ParseUtilization(strings.NewReader(labelled))
	if err != nil {
		t.Fatal(err)
	}
	if u != 0.9 || tx != 0.5 {
		t.Fatalf("labelled parse util=%g tx=%g, want 0.9 0.5", u, tx)
	}

	// Missing gauges read as zero, not an error.
	u, tx, err = ParseUtilization(strings.NewReader("other_metric 1\n"))
	if err != nil || u != 0 || tx != 0 {
		t.Fatalf("missing gauges: util=%g tx=%g err=%v, want zeros", u, tx, err)
	}
}

func TestDecide(t *testing.T) {
	cfg := PolicyConfig{TargetUtil: 0.6, ScaleUpUtil: 0.8, MaxK: 4}

	// Cool deployment: hold.
	d := Decide(cfg, []Sample{{Shard: 0, Util: 0.3}, {Shard: 1, Util: 0.2}})
	if d.Split != -1 || d.DesiredK != 2 {
		t.Fatalf("cool: %+v, want hold at K=2", d)
	}

	// One pegged shard: split it, desired K grows from the load sum.
	d = Decide(cfg, []Sample{{Shard: 0, Util: 0.95}, {Shard: 1, Util: 0.4}})
	if d.Split != 0 {
		t.Fatalf("hot: split=%d, want 0", d.Split)
	}
	if d.DesiredK != 3 { // ceil(1.35/0.6) = 3
		t.Fatalf("hot: desiredK=%d, want 3", d.DesiredK)
	}

	// TX saturation alone nominates a split (the fetch-path bottleneck).
	d = Decide(cfg, []Sample{{Shard: 0, Util: 0.1, TXUtil: 0.9}, {Shard: 1, Util: 0.2}})
	if d.Split != 0 || d.Peak != 0.9 {
		t.Fatalf("tx-hot: %+v, want split 0 at peak 0.9", d)
	}

	// At MaxK the controller observes but never splits.
	hot4 := []Sample{{Util: 0.9}, {Util: 0.9}, {Util: 0.9}, {Util: 0.9}}
	for i := range hot4 {
		hot4[i].Shard = i
	}
	d = Decide(cfg, hot4)
	if d.Split != -1 || d.DesiredK != 4 {
		t.Fatalf("at cap: %+v, want hold at K=4", d)
	}

	// Errored samples are never nominated.
	d = Decide(cfg, []Sample{{Shard: 0, Err: errors.New("down")}, {Shard: 1, Util: 0.85}})
	if d.Split != 1 {
		t.Fatalf("errored sample nominated: %+v", d)
	}

	// TXOnly ignores the CPU gauge: a shard with inflated CPU but a cold
	// TX line is never nominated over the TX-saturated one.
	txCfg := cfg
	txCfg.TXOnly = true
	d = Decide(txCfg, []Sample{
		{Shard: 0, Util: 0.99, TXUtil: 0.1},
		{Shard: 1, Util: 0.3, TXUtil: 0.9},
	})
	if d.Split != 1 || d.Peak != 0.9 {
		t.Fatalf("txonly: %+v, want split 1 at peak 0.9", d)
	}
}

// fakeActuator records split requests.
type fakeActuator struct {
	calls []int
	k     int
	err   error
}

func (f *fakeActuator) Split(s int) (int, error) {
	if f.err != nil {
		return f.k, f.err
	}
	f.calls = append(f.calls, s)
	f.k++
	return f.k, nil
}

// fixedScraper replays a scripted sequence of sweeps.
type fixedScraper struct {
	sweeps [][]Sample
	i      int
}

func (f *fixedScraper) Scrape() ([]Sample, error) {
	s := f.sweeps[f.i]
	if f.i < len(f.sweeps)-1 {
		f.i++
	}
	return s, nil
}

func TestControllerCooldown(t *testing.T) {
	hot := []Sample{{Shard: 0, Util: 0.95}, {Shard: 1, Util: 0.2}}
	act := &fakeActuator{k: 2}
	c := NewController(&fixedScraper{sweeps: [][]Sample{hot}}, act,
		PolicyConfig{ScaleUpUtil: 0.8, MaxK: 8, Cooldown: 100 * time.Millisecond})

	t0 := time.Unix(1000, 0)
	if _, err := c.Tick(t0); err != nil {
		t.Fatal(err)
	}
	// Inside the cooldown: decision still reports the split, but no
	// actuation happens.
	d, err := c.Tick(t0.Add(10 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if d.Split != 0 {
		t.Fatalf("decision lost the split: %+v", d)
	}
	if len(act.calls) != 1 {
		t.Fatalf("split actuated inside cooldown: %v", act.calls)
	}
	// Past the cooldown the next hot tick splits again.
	if _, err := c.Tick(t0.Add(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if len(act.calls) != 2 {
		t.Fatalf("cooldown never expired: %v", act.calls)
	}
	if got := c.Stats().Splits; got != 2 {
		t.Fatalf("stats splits = %d, want 2", got)
	}
}

func TestHTTPScraper(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("catfish_server_utilization 0.7\ncatfish_server_tx_utilization 0.3\n"))
	}))
	defer srv.Close()

	h := &HTTPScraper{URLs: []string{srv.URL, "http://127.0.0.1:1/metrics"}}
	samples, err := h.Scrape()
	if err != nil {
		t.Fatal(err)
	}
	if samples[0].Err != nil || samples[0].Util != 0.7 || samples[0].TXUtil != 0.3 {
		t.Fatalf("good endpoint: %+v", samples[0])
	}
	if samples[1].Err == nil {
		t.Fatal("dead endpoint scraped without error")
	}
}
