package workload

import (
	"math"
	"math/rand"
	"testing"

	"github.com/catfish-db/catfish/internal/rtree"
)

func TestUniformRectsValid(t *testing.T) {
	items := UniformRects(5000, 0.0001, 1)
	if len(items) != 5000 {
		t.Fatalf("len = %d", len(items))
	}
	unit := rtree.Entry{}.Rect // zero
	_ = unit
	for i, it := range items {
		r := it.Rect
		if !r.Valid() {
			t.Fatalf("item %d invalid: %v", i, r)
		}
		if r.MinX < 0 || r.MaxX > 1 || r.MinY < 0 || r.MaxY > 1 {
			t.Fatalf("item %d outside unit square: %v", i, r)
		}
		if r.Width() > 0.0001 || r.Height() > 0.0001 {
			t.Fatalf("item %d edge too large: %v", i, r)
		}
		if it.Ref != uint64(i) {
			t.Fatalf("item %d ref = %d", i, it.Ref)
		}
	}
}

func TestUniformRectsDeterministic(t *testing.T) {
	a := UniformRects(100, 0.01, 42)
	b := UniformRects(100, 0.01, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different datasets")
		}
	}
	c := UniformRects(100, 0.01, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestUniformScaleBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := UniformScale{Scale: 0.01}
	for i := 0; i < 1000; i++ {
		r := g.Next(rng)
		if !r.Valid() || r.Width() > 0.01 || r.Height() > 0.01 {
			t.Fatalf("query %d out of scale: %v", i, r)
		}
	}
}

func TestPowerLawScaleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := PowerLawScale{Min: 0.00001, Max: 0.01, Exponent: -0.99}
	small := 0
	const n = 20000
	for i := 0; i < n; i++ {
		r := g.Next(rng)
		if r.Width() > 0.01 || r.Height() > 0.01 {
			t.Fatalf("edge exceeds max: %v", r)
		}
		if r.Width() <= 0.001 && r.Height() <= 0.001 {
			small++
		}
	}
	// With exponent -0.99 the scale is close to log-uniform, so a large
	// majority of requests search a small scope (paper: "much more
	// requests to search in a small scope").
	if frac := float64(small) / n; frac < 0.55 {
		t.Errorf("small-scope fraction = %.2f, want > 0.55", frac)
	}
}

func TestPowerLawSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := powerLaw(rng, 0.5, 1.0, -0.99)
		if v < 0.5 || v > 1.0 {
			t.Fatalf("sample %v out of (0.5, 1]", v)
		}
	}
	// a = -1 falls back to log-uniform.
	for i := 0; i < 1000; i++ {
		v := powerLaw(rng, 0.001, 1.0, -1.0)
		if v < 0.001 || v > 1.0 {
			t.Fatalf("log-uniform sample %v out of range", v)
		}
	}
}

func TestSkewedInsertsSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := SkewedInserts{Edge: 0.0001}
	central := 0
	const n = 10000
	for i := 0; i < n; i++ {
		r := g.Next(rng)
		if !r.Valid() || r.MinX < 0 || r.MaxX > 1 || r.MinY < 0 || r.MaxY > 1 {
			t.Fatalf("insert %d invalid: %v", i, r)
		}
		x, y := r.Center()
		// The coordinate power law f(t) ∝ t^-0.99 over (0.5, 1] favors
		// values near 0.5, and the four reflections are symmetric, so the
		// stream concentrates in the central quarter [0.25, 0.75]².
		if math.Abs(x-0.5) < 0.25 && math.Abs(y-0.5) < 0.25 {
			central++
		}
	}
	// Uniform placement would put 25% in the central quarter; the skewed
	// stream puts noticeably more there (analytically ~34%).
	if frac := float64(central) / n; frac < 0.30 {
		t.Errorf("central fraction = %.2f, want > 0.30 (skew missing)", frac)
	}
}

func TestMixFractions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMix(UniformScale{Scale: 0.01}, SkewedInserts{Edge: 0.0001}, 0.1, 1<<40)
	inserts, searches := 0, 0
	refs := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		op := m.Next(rng)
		switch op.Type {
		case OpInsert:
			inserts++
			if op.Ref <= 1<<40 {
				t.Fatalf("insert ref %d below base", op.Ref)
			}
			if refs[op.Ref] {
				t.Fatalf("duplicate insert ref %d", op.Ref)
			}
			refs[op.Ref] = true
		case OpSearch:
			searches++
		default:
			t.Fatalf("unknown op type %v", op.Type)
		}
	}
	frac := float64(inserts) / 10000
	if frac < 0.08 || frac > 0.12 {
		t.Errorf("insert fraction = %.3f, want ~0.1", frac)
	}
	_ = searches
}

func TestMixZeroInsertFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMix(UniformScale{Scale: 0.01}, SkewedInserts{Edge: 0.0001}, 0, 0)
	for i := 0; i < 1000; i++ {
		if op := m.Next(rng); op.Type != OpSearch {
			t.Fatal("search-only mix produced an insert")
		}
	}
}

func TestRea02LikeStructure(t *testing.T) {
	cfg := Rea02Config{N: 60000, SubRegionSize: 20000, Seed: 7}
	items := Rea02Like(cfg)
	if len(items) != 60000 {
		t.Fatalf("len = %d", len(items))
	}
	for i, it := range items {
		if !it.Rect.Valid() {
			t.Fatalf("item %d invalid", i)
		}
		if it.Rect.MinX < 0 || it.Rect.MaxX > 1 || it.Rect.MinY < 0 || it.Rect.MaxY > 1 {
			t.Fatalf("item %d outside unit square: %v", i, it.Rect)
		}
		if it.Ref != uint64(i) {
			t.Fatalf("item %d ref = %d (not insertion order)", i, it.Ref)
		}
	}
	// Within a sub-region, consecutive rows go north->south: the first
	// item's y must be above the last item's y.
	_, firstY := items[0].Rect.Center()
	_, lastY := items[19999].Rect.Center()
	if firstY <= lastY {
		t.Errorf("rows not ordered north->south: first y %.3f, last y %.3f", firstY, lastY)
	}
}

func TestRea02DefaultSize(t *testing.T) {
	if Rea02Size != 1888012 {
		t.Fatal("rea02 size constant drifted from the paper")
	}
	items := Rea02Like(Rea02Config{N: 1000, SubRegionSize: 100, Seed: 1})
	if len(items) != 1000 {
		t.Fatalf("len = %d", len(items))
	}
}

// The rea02 query generator must produce queries returning ~50-150 results
// against the rea02-like dataset (the paper's guarantee).
func TestRea02QuerySelectivity(t *testing.T) {
	const n = 100000
	items := Rea02Like(Rea02Config{N: n, SubRegionSize: 10000, Seed: 8})
	// Brute-force count (tree not needed for a selectivity check).
	g := NewRea02Queries(n)
	rng := rand.New(rand.NewSource(9))
	var totals []int
	for q := 0; q < 30; q++ {
		query := g.Next(rng)
		count := 0
		for _, it := range items {
			if query.Intersects(it.Rect) {
				count++
			}
		}
		totals = append(totals, count)
	}
	sum := 0
	for _, c := range totals {
		sum += c
	}
	avg := float64(sum) / float64(len(totals))
	// The paper's average is 100; synthetic clustering shifts it somewhat.
	if avg < 30 || avg > 300 {
		t.Errorf("average results = %.1f, want within [30, 300] of the ~100 target", avg)
	}
}

func BenchmarkRea02Like(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Rea02Like(Rea02Config{N: 100000, Seed: int64(i)})
	}
}
