// Package workload generates the datasets and request streams of the
// paper's evaluation (§I, §V):
//
//   - the 2-million-rectangle uniform dataset whose edges scale in
//     (0, 0.0001];
//   - search requests at a fixed scale s (edges uniform in (0, s]; the
//     paper uses s = 0.00001 for the CPU-bound and s = 0.01 for the
//     bandwidth-bound regime);
//   - power-law-scaled searches, f(t) ∝ t^-0.99 over t ∈ (0.00001, 0.01];
//   - the skewed insert stream of §V-B (power-law coordinates over
//     (0.5, 1.0], reflected into the four corners);
//   - a synthetic reconstruction of the rea02 real dataset (§V-C):
//     ~1.89 M thin street-segment rectangles grouped into ~20 k-object
//     sub-regions, inserted row-major west→east, rows north→south,
//     sub-regions in random order, with queries tuned to return 50–150
//     (average ~100) results.
//
// Generators draw from caller-provided *rand.Rand so each simulated client
// replays an independent, deterministic stream.
package workload

import (
	"math"
	"math/rand"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/rtree"
)

// UniformRects builds the paper's base dataset: n rectangles with edges
// uniform in (0, maxEdge], placed uniformly so each rectangle stays inside
// the unit square. Refs are 0..n-1. It is the seeded convenience form of
// UniformRectsRand.
func UniformRects(n int, maxEdge float64, seed int64) []rtree.Entry {
	return UniformRectsRand(rand.New(rand.NewSource(seed)), n, maxEdge)
}

// UniformRectsRand is UniformRects drawing from a caller-provided source,
// like every other generator in the package, so a composite scenario can
// thread one deterministic stream through dataset and traffic generation.
func UniformRectsRand(rng *rand.Rand, n int, maxEdge float64) []rtree.Entry {
	out := make([]rtree.Entry, n)
	for i := range out {
		out[i] = rtree.Entry{Rect: uniformRect(rng, maxEdge), Ref: uint64(i)}
	}
	return out
}

func uniformRect(rng *rand.Rand, maxEdge float64) geo.Rect {
	w := rng.Float64() * maxEdge
	h := rng.Float64() * maxEdge
	x := rng.Float64() * (1 - w)
	y := rng.Float64() * (1 - h)
	return geo.Rect{MinX: x, MaxX: x + w, MinY: y, MaxY: y + h}
}

// QueryGen produces search rectangles.
type QueryGen interface {
	// Next returns the next query rectangle.
	Next(rng *rand.Rand) geo.Rect
}

// UniformScale generates queries whose edges are uniform in (0, Scale] —
// the paper's "request scale" workloads.
type UniformScale struct {
	Scale float64
}

// Next implements QueryGen.
func (u UniformScale) Next(rng *rand.Rand) geo.Rect {
	return uniformRect(rng, u.Scale)
}

// PowerLawScale first draws a scale t with density f(t) ∝ t^Exponent over
// (Min, Max], then generates a query with edges uniform in (0, t]. With the
// paper's exponent −0.99 most requests search a small scope.
type PowerLawScale struct {
	Min, Max float64
	Exponent float64 // paper: -0.99
}

// Next implements QueryGen.
func (p PowerLawScale) Next(rng *rand.Rand) geo.Rect {
	t := powerLaw(rng, p.Min, p.Max, p.Exponent)
	return uniformRect(rng, t)
}

// powerLaw samples t ∈ (min, max] with density ∝ t^a via inverse-CDF.
func powerLaw(rng *rand.Rand, min, max, a float64) float64 {
	u := rng.Float64()
	b := a + 1
	if math.Abs(b) < 1e-9 {
		// a ≈ -1: log-uniform.
		return min * math.Exp(u*math.Log(max/min))
	}
	lo := math.Pow(min, b)
	hi := math.Pow(max, b)
	return math.Pow(u*(hi-lo)+lo, 1/b)
}

// SkewedInserts generates the paper's §V-B insert stream: coordinates drawn
// from f(t) ∝ t^-0.99 over (0.5, 1.0], then the point (x, y) is randomly
// reflected to one of (x, y), (1−x, y), (x, 1−y), (1−x, 1−y) — skewed
// updates concentrated near the four corners, mimicking city-area updates.
type SkewedInserts struct {
	// Edge is the maximum rectangle edge (matches the dataset's 0.0001).
	Edge float64
	// Exponent of the coordinate power law (paper: -0.99).
	Exponent float64
}

// Next returns the next insert rectangle.
func (s SkewedInserts) Next(rng *rand.Rand) geo.Rect {
	exp := s.Exponent
	if exp == 0 {
		exp = -0.99
	}
	x := powerLaw(rng, 0.5, 1.0, exp)
	y := powerLaw(rng, 0.5, 1.0, exp)
	switch rng.Intn(4) {
	case 1:
		x = 1 - x
	case 2:
		y = 1 - y
	case 3:
		x, y = 1-x, 1-y
	}
	w := rng.Float64() * s.Edge
	h := rng.Float64() * s.Edge
	r := geo.Rect{MinX: x, MaxX: x + w, MinY: y, MaxY: y + h}
	return clampUnit(r)
}

func clampUnit(r geo.Rect) geo.Rect {
	if r.MaxX > 1 {
		r.MinX -= r.MaxX - 1
		r.MaxX = 1
	}
	if r.MaxY > 1 {
		r.MinY -= r.MaxY - 1
		r.MaxY = 1
	}
	if r.MinX < 0 {
		r.MinX = 0
	}
	if r.MinY < 0 {
		r.MinY = 0
	}
	return r
}

// OpType is the kind of one workload operation.
type OpType int

// Operation kinds.
const (
	OpSearch OpType = iota + 1
	OpInsert
)

// Op is one generated request.
type Op struct {
	Type OpType
	Rect geo.Rect
	Ref  uint64
}

// Mix interleaves searches and inserts per the paper's hybrid workloads
// (90% search / 10% insert in §V-B).
type Mix struct {
	Queries        QueryGen
	Inserts        SkewedInserts
	InsertFraction float64
	nextRef        uint64
	refBase        uint64
}

// NewMix returns a mix whose inserted entries get refs starting at refBase
// (chosen above the dataset's refs).
func NewMix(queries QueryGen, inserts SkewedInserts, insertFraction float64, refBase uint64) *Mix {
	return &Mix{Queries: queries, Inserts: inserts, InsertFraction: insertFraction, refBase: refBase}
}

// Next returns the next operation.
func (m *Mix) Next(rng *rand.Rand) Op {
	if m.InsertFraction > 0 && rng.Float64() < m.InsertFraction {
		m.nextRef++
		return Op{Type: OpInsert, Rect: m.Inserts.Next(rng), Ref: m.refBase + m.nextRef}
	}
	return Op{Type: OpSearch, Rect: m.Queries.Next(rng)}
}
