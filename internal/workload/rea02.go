package workload

import (
	"math"
	"math/rand"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/rtree"
)

// Rea02Size is the object count of the real rea02 dataset (California
// street segments) used in the paper's §V-C.
const Rea02Size = 1888012

// Rea02Config shapes the synthetic reconstruction of rea02.
type Rea02Config struct {
	// N is the total rectangle count (default Rea02Size).
	N int
	// SubRegionSize is the objects per sub-region (paper: roughly 20,000).
	SubRegionSize int
	// Seed drives all randomness.
	Seed int64
}

// Rea02Like synthesizes a dataset with the structure the paper describes
// for rea02: street segments (thin axis-aligned rectangles) grouped into
// sub-regions of ~20 k objects. Within a sub-region the segments are laid
// out in rows running west→east, rows ordered north→south, and emitted in
// exactly that order; the sub-regions themselves are emitted in random
// order. The returned slice is in insertion order, so loading it
// sequentially reproduces the clustered insertion pattern that stresses
// R*-tree splits.
func Rea02Like(cfg Rea02Config) []rtree.Entry {
	return Rea02LikeRand(rand.New(rand.NewSource(cfg.Seed)), cfg)
}

// Rea02LikeRand is Rea02Like drawing from a caller-provided source
// (cfg.Seed is ignored), matching the injected-*rand.Rand convention of
// the rest of the package.
func Rea02LikeRand(rng *rand.Rand, cfg Rea02Config) []rtree.Entry {
	if cfg.N == 0 {
		cfg.N = Rea02Size
	}
	if cfg.SubRegionSize == 0 {
		cfg.SubRegionSize = 20000
	}
	numSub := (cfg.N + cfg.SubRegionSize - 1) / cfg.SubRegionSize
	grid := int(math.Ceil(math.Sqrt(float64(numSub))))
	cell := 1.0 / float64(grid)

	order := rng.Perm(numSub)
	out := make([]rtree.Entry, 0, cfg.N)
	ref := uint64(0)
	for _, sub := range order {
		remaining := cfg.N - len(out)
		if remaining <= 0 {
			break
		}
		count := cfg.SubRegionSize
		if count > remaining {
			count = remaining
		}
		cx := float64(sub%grid) * cell
		cy := float64(sub/grid) * cell
		out = appendSubRegion(out, rng, cx, cy, cell, count, &ref)
	}
	return out
}

// appendSubRegion emits count street segments for the cell at (cx, cy):
// rows north→south (descending y), segments west→east within a row.
func appendSubRegion(out []rtree.Entry, rng *rand.Rand, cx, cy, cell float64, count int, ref *uint64) []rtree.Entry {
	rows := int(math.Ceil(math.Sqrt(float64(count))))
	perRow := (count + rows - 1) / rows
	rowGap := cell / float64(rows+1)
	emitted := 0
	for r := 0; r < rows && emitted < count; r++ {
		// North to south: start at the top of the cell.
		y := cy + cell - float64(r+1)*rowGap
		segGap := cell / float64(perRow+1)
		for s := 0; s < perRow && emitted < count; s++ {
			x := cx + float64(s+1)*segGap
			// Street segments: long and thin, mostly horizontal with some
			// vertical cross streets.
			length := segGap * (0.6 + 0.8*rng.Float64())
			thickness := length * (0.02 + 0.08*rng.Float64())
			var rect geo.Rect
			if rng.Float64() < 0.8 {
				rect = geo.Rect{MinX: x, MaxX: x + length, MinY: y, MaxY: y + thickness}
			} else {
				rect = geo.Rect{MinX: x, MaxX: x + thickness, MinY: y, MaxY: y + length}
			}
			out = append(out, rtree.Entry{Rect: clampUnit(rect), Ref: *ref})
			*ref++
			emitted++
		}
	}
	return out
}

// Rea02Queries generates the paper's rea02 query stream: each query returns
// between 50 and 150 results, ~100 on average. Query side lengths are
// derived from the dataset's mean density; the harness verifies the
// realized result counts in its tests.
type Rea02Queries struct {
	// Density is items per unit area (N when the space is the unit square).
	Density float64
}

// NewRea02Queries returns a generator calibrated for n items in the unit
// square.
func NewRea02Queries(n int) Rea02Queries {
	return Rea02Queries{Density: float64(n)}
}

// Next implements QueryGen.
func (g Rea02Queries) Next(rng *rand.Rand) geo.Rect {
	target := 50 + rng.Float64()*100 // uniform in [50, 150]
	edge := math.Sqrt(target / g.Density)
	x := rng.Float64() * (1 - edge)
	y := rng.Float64() * (1 - edge)
	return geo.Rect{MinX: x, MaxX: x + edge, MinY: y, MaxY: y + edge}
}

var _ QueryGen = Rea02Queries{}
var _ QueryGen = UniformScale{}
var _ QueryGen = PowerLawScale{}
