// Package ringbuf implements the paper's ring-buffer messaging design
// (Fig 5) over RDMA Write: a pre-allocated, registered receive buffer into
// which the remote side writes length-framed messages, with a free pointer
// (tail) advanced by the writer and a processed pointer (head) advanced by
// the reader and mirrored back to the writer with an RDMA Write so the
// writer can tell when space has been consumed.
//
// A frame is [size uint32][payload]. When a frame would straddle the ring's
// physical end, the writer emits a pad marker (size = padMarker) and
// restarts at offset zero, so every frame is physically contiguous — a
// requirement for single-RDMA-Write delivery.
package ringbuf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/sim"
)

const (
	frameHeader = 4
	padMarker   = ^uint32(0)
	// HeadMirrorSize is the registered buffer size for the head mirror.
	HeadMirrorSize = 8
)

// Errors.
var (
	ErrTooLarge = errors.New("ringbuf: message exceeds ring capacity")
	ErrCorrupt  = errors.New("ringbuf: corrupt frame")
)

// Writer is the sending end: it RDMA-Writes frames into the remote ring and
// watches the locally mirrored head to respect the reader's progress.
type Writer struct {
	qp         *fabric.QP
	ring       *fabric.Memory // remote ring buffer
	headMirror *fabric.Memory // local 8-byte mirror, written by the reader
	tail       uint64         // absolute byte offset (monotone)
	head       uint64         // last observed processed offset
	size       uint64
	scratch    []byte
	// FullPollInterval is how long the writer sleeps between head-mirror
	// polls when the ring is full.
	FullPollInterval time.Duration
}

// Reader is the receiving end: it parses frames from its local ring and
// reports consumption by RDMA-Writing its head to the writer's mirror.
type Reader struct {
	qp       *fabric.QP
	ring     *fabric.Memory // local ring buffer
	mirror   *fabric.Memory // remote writer's head mirror
	head     uint64
	reported uint64
	size     uint64
	scratch  []byte // reused TryRecv payload buffer
}

// New wires up a ring of size bytes whose data flows from the writer host
// (behind wqp) to the reader host behind rqp. The two endpoints must be the
// two halves of one connection (wqp.Peer() == rqp) so that Write-with-IMM
// events raised by the writer surface on the reader's completion queue. The
// ring lives on the reading host, the head mirror on the writing host.
func New(wqp, rqp *fabric.QP, size int) (*Writer, *Reader, error) {
	if size < 64 {
		return nil, nil, fmt.Errorf("ringbuf: size %d too small", size)
	}
	if wqp.Peer() != rqp {
		return nil, nil, errors.New("ringbuf: endpoints are not peers of one connection")
	}
	ring := rqp.Local().RegisterMemory(size)
	mirror := wqp.Local().RegisterMemory(HeadMirrorSize)
	w := &Writer{
		qp:               wqp,
		ring:             ring,
		headMirror:       mirror,
		size:             uint64(size),
		FullPollInterval: 5 * time.Microsecond,
	}
	r := &Reader{
		qp:     rqp,
		ring:   ring,
		mirror: mirror,
		size:   uint64(size),
	}
	return w, r, nil
}

// Capacity returns the ring size in bytes.
func (w *Writer) Capacity() int { return int(w.size) }

// MaxPayload returns the largest payload Send accepts: half the ring minus
// framing. Frames must be physically contiguous, and a frame larger than
// half the ring can reach a state where neither the tail run nor the
// wrapped start ever has room (the pad plus the frame exceed the ring), so
// the writer would stall forever. Batch senders flush below this bound.
func (w *Writer) MaxPayload() int { return int(w.size/2) - frameHeader }

// QP returns the writer's queue-pair endpoint (local = writing host). The
// server reuses it for heartbeat-mailbox writes to the same client.
func (w *Writer) QP() *fabric.QP { return w.qp }

// refreshHead re-reads the locally mirrored processed pointer.
func (w *Writer) refreshHead() {
	w.head = binary.LittleEndian.Uint64(w.headMirror.Bytes())
}

// free returns the writable bytes remaining.
func (w *Writer) free() uint64 { return w.size - (w.tail - w.head) }

// Send frames payload and RDMA-Writes it into the remote ring, blocking
// (polling the head mirror) while the ring is full. When notify is set the
// write carries immediate data imm, raising a completion event at the
// reader (event-based fast messaging); otherwise the reader must poll.
func (w *Writer) Send(p *sim.Proc, payload []byte, imm uint64, notify bool) error {
	need := uint64(frameHeader + len(payload))
	// Frames above half the ring could wedge the writer: once the tail sits
	// past the midpoint, pad-to-end plus the frame exceeds the ring and no
	// amount of reader progress ever frees enough contiguous space (the old
	// bound of size-2*frameHeader let batched payloads hit exactly that
	// permanent stall). See MaxPayload.
	if need*2 > w.size {
		return fmt.Errorf("%w: %d bytes into %d ring (max payload %d)",
			ErrTooLarge, len(payload), w.size, w.MaxPayload())
	}
	for {
		// Account for a possible pad frame to the physical end.
		pos := w.tail % w.size
		pad := uint64(0)
		if pos+need > w.size {
			pad = w.size - pos
		}
		if w.free() >= need+pad {
			if pad > 0 {
				if pad >= frameHeader {
					var hdr [frameHeader]byte
					binary.LittleEndian.PutUint32(hdr[:], padMarker)
					if err := w.qp.Write(p, w.ring, int(pos), hdr[:], fabric.WriteOpts{}); err != nil {
						return err
					}
				}
				w.tail += pad
				pos = 0
			}
			w.scratch = w.scratch[:0]
			w.scratch = append(w.scratch, 0, 0, 0, 0)
			binary.LittleEndian.PutUint32(w.scratch, uint32(len(payload)))
			w.scratch = append(w.scratch, payload...)
			if err := w.qp.Write(p, w.ring, int(pos), w.scratch,
				fabric.WriteOpts{Imm: imm, Notify: notify}); err != nil {
				return err
			}
			w.tail += need
			return nil
		}
		w.refreshHead()
		if w.free() >= need+pad {
			continue
		}
		p.Sleep(w.FullPollInterval)
		w.refreshHead()
	}
}

// TryRecv parses the next frame from the ring without blocking, returning
// the payload and true when a complete frame is present. The payload is a
// copy into a buffer the Reader reuses: it is valid only until the next
// TryRecv call (callers decode before polling again; retain a copy
// otherwise). Consumed bytes are zeroed so stale frames from a previous
// lap can never be mistaken for new arrivals.
func (r *Reader) TryRecv() ([]byte, error, bool) {
	buf := r.ring.Bytes()
	for {
		pos := r.head % r.size
		if pos+frameHeader > r.size {
			// Implicit pad: too little room for even a header.
			for i := pos; i < r.size; i++ {
				buf[i] = 0
			}
			r.head += r.size - pos
			continue
		}
		sz := binary.LittleEndian.Uint32(buf[pos:])
		if sz == 0 {
			return nil, nil, false // nothing arrived yet
		}
		if sz == padMarker {
			for i := pos; i < r.size; i++ {
				buf[i] = 0
			}
			r.head += r.size - pos
			continue
		}
		if uint64(frameHeader+sz) > r.size-pos {
			return nil, fmt.Errorf("%w: size %d at pos %d", ErrCorrupt, sz, pos), false
		}
		payload := append(r.scratch[:0], buf[pos+frameHeader:pos+frameHeader+uint64(sz)]...)
		r.scratch = payload
		for i := pos; i < pos+frameHeader+uint64(sz); i++ {
			buf[i] = 0
		}
		r.head += frameHeader + uint64(sz)
		return payload, nil, true
	}
}

// ReportHead RDMA-Writes the reader's processed pointer to the writer's
// mirror so the writer can reuse the space. Callers batch it (after
// draining) rather than per message.
func (r *Reader) ReportHead(p *sim.Proc) error {
	if r.head == r.reported {
		return nil
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], r.head)
	if err := r.qp.Write(p, r.mirror, 0, b[:], fabric.WriteOpts{}); err != nil {
		return err
	}
	r.reported = r.head
	return nil
}

// CQ returns the reader-side completion queue on which Write-with-IMM
// arrivals surface (the event channel of event-based fast messaging).
func (r *Reader) CQ() *sim.Queue[fabric.Completion] { return r.qp.CQ() }
