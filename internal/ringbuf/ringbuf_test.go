package ringbuf

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/sim"
)

// testRing builds engine, network, two hosts, and a ring from client to
// server of the given size.
func testRing(t testing.TB, size int) (*sim.Engine, *Writer, *Reader) {
	t.Helper()
	e := sim.New(1)
	n := fabric.NewNetwork(e, netmodel.InfiniBand100G)
	client := n.NewHost("client", nil)
	server := n.NewHost("server", nil)
	wqp, rqp := n.ConnectQP(client, server, 0)
	w, r, err := New(wqp, rqp, size)
	if err != nil {
		t.Fatal(err)
	}
	return e, w, r
}

func TestNewValidation(t *testing.T) {
	e := sim.New(1)
	n := fabric.NewNetwork(e, netmodel.InfiniBand100G)
	a := n.NewHost("a", nil)
	b := n.NewHost("b", nil)
	qa, qb := n.ConnectQP(a, b, 0)
	if _, _, err := New(qa, qb, 16); err == nil {
		t.Error("tiny ring should be rejected")
	}
	qa2, _ := n.ConnectQP(a, b, 0)
	if _, _, err := New(qa2, qb, 4096); err == nil {
		t.Error("non-peer endpoints should be rejected")
	}
	e.Run()
}

func TestSendRecvSingle(t *testing.T) {
	e, w, r := testRing(t, 4096)
	var got []byte
	e.Spawn("reader", func(p *sim.Proc) {
		c := r.CQ().Pop(p)
		if c.Op != fabric.OpWriteImm || c.Imm != 7 {
			t.Errorf("completion %+v", c)
		}
		payload, err, ok := r.TryRecv()
		if err != nil || !ok {
			t.Errorf("TryRecv: %v %v", err, ok)
		}
		got = payload
		if err := r.ReportHead(p); err != nil {
			t.Error(err)
		}
	})
	e.Spawn("writer", func(p *sim.Proc) {
		if err := w.Send(p, []byte("request-1"), 7, true); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "request-1" {
		t.Errorf("got %q", got)
	}
}

func TestTryRecvEmptyRing(t *testing.T) {
	_, _, r := testRing(t, 1024)
	if _, err, ok := r.TryRecv(); err != nil || ok {
		t.Errorf("empty TryRecv = %v, %v", err, ok)
	}
}

func TestManyMessagesFIFO(t *testing.T) {
	e, w, r := testRing(t, 512)
	const n = 200
	var got [][]byte
	e.Spawn("reader", func(p *sim.Proc) {
		for len(got) < n {
			r.CQ().Pop(p)
			for {
				payload, err, ok := r.TryRecv()
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					break
				}
				// TryRecv reuses its payload buffer; copy to retain.
				got = append(got, append([]byte(nil), payload...))
			}
			if err := r.ReportHead(p); err != nil {
				t.Error(err)
				return
			}
		}
	})
	e.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			msg := bytes.Repeat([]byte{byte(i)}, 1+i%97)
			if err := w.Send(p, msg, uint64(i), true); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("received %d of %d", len(got), n)
	}
	for i, m := range got {
		want := bytes.Repeat([]byte{byte(i)}, 1+i%97)
		if !bytes.Equal(m, want) {
			t.Fatalf("message %d corrupt: %d bytes (want %d)", i, len(m), len(want))
		}
	}
}

func TestBackpressureWhenReaderStalls(t *testing.T) {
	// Ring fits only a few messages; writer must stall until the reader
	// reports progress, and no message may be lost or corrupted.
	e, w, r := testRing(t, 256)
	const n = 20
	payload := bytes.Repeat([]byte{0xAB}, 60)
	var received int
	e.Spawn("reader", func(p *sim.Proc) {
		for received < n {
			r.CQ().Pop(p)
			p.Sleep(50 * time.Microsecond) // slow consumer
			for {
				m, err, ok := r.TryRecv()
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					break
				}
				if !bytes.Equal(m, payload) {
					t.Errorf("message %d corrupt", received)
				}
				received++
			}
			if err := r.ReportHead(p); err != nil {
				t.Error(err)
				return
			}
		}
	})
	var sendDone time.Duration
	e.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := w.Send(p, payload, 0, true); err != nil {
				t.Error(err)
				return
			}
		}
		sendDone = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if received != n {
		t.Fatalf("received %d of %d", received, n)
	}
	if sendDone < 100*time.Microsecond {
		t.Errorf("writer never stalled (done at %v) despite tiny ring", sendDone)
	}
}

func TestWrapAroundWithPad(t *testing.T) {
	// Message sizes chosen so frames straddle the physical end repeatedly.
	e, w, r := testRing(t, 128)
	const n = 40
	var msgs [][]byte
	e.Spawn("reader", func(p *sim.Proc) {
		for len(msgs) < n {
			r.CQ().Pop(p)
			for {
				m, err, ok := r.TryRecv()
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					break
				}
				msgs = append(msgs, append([]byte(nil), m...))
			}
			if err := r.ReportHead(p); err != nil {
				t.Error(err)
				return
			}
		}
	})
	e.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			m := bytes.Repeat([]byte{byte(i + 1)}, 25+i%13)
			if err := w.Send(p, m, 0, true); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, m := range msgs {
		want := bytes.Repeat([]byte{byte(i + 1)}, 25+i%13)
		if !bytes.Equal(m, want) {
			t.Fatalf("message %d corrupt after wrap", i)
		}
	}
}

func TestOversizeMessageRejected(t *testing.T) {
	e, w, _ := testRing(t, 128)
	e.Spawn("writer", func(p *sim.Proc) {
		if err := w.Send(p, make([]byte, 200), 0, true); !errors.Is(err, ErrTooLarge) {
			t.Errorf("err = %v, want ErrTooLarge", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPollingModeWithoutNotify(t *testing.T) {
	// notify=false: no CQ event; the reader discovers the frame by polling.
	e, w, r := testRing(t, 1024)
	var got []byte
	e.Spawn("reader", func(p *sim.Proc) {
		for {
			m, err, ok := r.TryRecv()
			if err != nil {
				t.Error(err)
				return
			}
			if ok {
				got = m
				return
			}
			p.Sleep(time.Microsecond)
		}
	})
	e.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(10 * time.Microsecond)
		if err := w.Send(p, []byte("polled"), 0, false); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "polled" {
		t.Errorf("got %q", got)
	}
}
