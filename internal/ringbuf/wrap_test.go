package ringbuf

import (
	"bytes"
	"errors"
	"testing"

	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

func TestMaxPayloadBoundary(t *testing.T) {
	// MaxPayload is the largest payload whose frame still fits half the
	// ring; one byte more must be rejected up front (the old code accepted
	// it and could deadlock waiting for space that can never free up).
	e, w, _ := testRing(t, 128)
	if got, want := w.MaxPayload(), 128/2-4; got != want {
		t.Fatalf("MaxPayload = %d, want %d", got, want)
	}
	e.Spawn("writer", func(p *sim.Proc) {
		if err := w.Send(p, make([]byte, w.MaxPayload()+1), 0, true); !errors.Is(err, ErrTooLarge) {
			t.Errorf("oversize by one: err = %v, want ErrTooLarge", err)
		}
		if err := w.Send(p, make([]byte, w.MaxPayload()), 0, true); err != nil {
			t.Errorf("exact MaxPayload send: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPayloadStreamAcrossWraps(t *testing.T) {
	// A sustained stream of maximum-size frames is the hardest wrap
	// alignment: every frame occupies exactly half the ring, so the writer
	// alternates between a perfectly aligned frame and one that pads to the
	// physical end. The stream must make progress and stay intact.
	e, w, r := testRing(t, 128)
	const n = 60
	mk := func(i int) []byte {
		size := w.MaxPayload()
		if i%3 == 1 {
			size -= 7 // odd sizes force pads at varying offsets
		}
		return bytes.Repeat([]byte{byte(i + 1)}, size)
	}
	var got [][]byte
	e.Spawn("reader", func(p *sim.Proc) {
		for len(got) < n {
			r.CQ().Pop(p)
			for {
				m, err, ok := r.TryRecv()
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					break
				}
				got = append(got, append([]byte(nil), m...))
			}
			if err := r.ReportHead(p); err != nil {
				t.Error(err)
				return
			}
		}
	})
	e.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := w.Send(p, mk(i), uint64(i), true); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("received %d of %d", len(got), n)
	}
	for i, m := range got {
		if !bytes.Equal(m, mk(i)) {
			t.Fatalf("message %d corrupt after wrap", i)
		}
	}
}

func TestBatchContainersAcrossWrapBoundary(t *testing.T) {
	// Real batch containers of wire requests streamed through a small ring:
	// container sizes vary so frames straddle the physical end repeatedly,
	// and every sub-message must decode intact on the far side.
	e, w, r := testRing(t, 512)
	const containers = 50
	var enc wire.BatchEncoder
	nextID := uint64(0)
	encode := func(i int, buf []byte) ([]byte, int) {
		k := 1 + i%4 // 56..215 bytes: crosses the 512-byte ring every few sends
		enc.Reset(buf[:0])
		for j := 0; j < k; j++ {
			nextID++
			enc.Begin()
			enc.Buf = wire.Request{Type: wire.MsgSearch, ID: nextID}.Encode(enc.Buf)
			enc.End()
		}
		return enc.Bytes(), k
	}
	var gotIDs []uint64
	total := 0
	for i := 0; i < containers; i++ {
		total += 1 + i%4
	}
	e.Spawn("reader", func(p *sim.Proc) {
		for len(gotIDs) < total {
			r.CQ().Pop(p)
			for {
				m, err, ok := r.TryRecv()
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					break
				}
				it, err := wire.DecodeBatch(m)
				if err != nil {
					t.Errorf("container corrupt after wrap: %v", err)
					return
				}
				for {
					msg, ok := it.Next()
					if !ok {
						break
					}
					req, err := wire.DecodeRequest(msg)
					if err != nil {
						t.Errorf("sub-message corrupt after wrap: %v", err)
						return
					}
					gotIDs = append(gotIDs, req.ID)
				}
				if err := it.Err(); err != nil {
					t.Error(err)
					return
				}
			}
			if err := r.ReportHead(p); err != nil {
				t.Error(err)
				return
			}
		}
	})
	e.Spawn("writer", func(p *sim.Proc) {
		var buf []byte
		for i := 0; i < containers; i++ {
			payload, _ := encode(i, buf)
			if err := w.Send(p, payload, uint64(i), true); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			buf = enc.Buf
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range gotIDs {
		if id != uint64(i+1) {
			t.Fatalf("sub-message %d: ID %d, want %d (reordered or lost at wrap)", i, id, i+1)
		}
	}
	if len(gotIDs) != total {
		t.Fatalf("decoded %d sub-messages, want %d", len(gotIDs), total)
	}
}
