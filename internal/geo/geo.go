// Package geo provides the 2-dimensional geometric primitives used by the
// R-tree: axis-aligned rectangles with double-precision coordinates, and the
// area/margin/overlap computations the R*-tree algorithms are built on.
//
// All coordinates follow the paper's convention: the data space is the unit
// square [0, 1]², and a rectangle is stored as min(x), max(x), min(y),
// max(y) — four float64 values (32 bytes).
package geo

import (
	"fmt"
	"math"
)

// Rect is a closed, axis-aligned rectangle. A Rect is valid when
// MinX <= MaxX and MinY <= MaxY; degenerate rectangles (points and
// segments) are valid.
type Rect struct {
	MinX, MaxX, MinY, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points, normalizing
// the coordinate order so the result is always valid.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if y2 < y1 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MaxX: x2, MinY: y1, MaxY: y2}
}

// PointRect returns the degenerate rectangle covering exactly the point
// (x, y).
func PointRect(x, y float64) Rect {
	return Rect{MinX: x, MaxX: x, MinY: y, MaxY: y}
}

// Valid reports whether r has non-inverted coordinates and no NaNs.
func (r Rect) Valid() bool {
	if math.IsNaN(r.MinX) || math.IsNaN(r.MaxX) || math.IsNaN(r.MinY) || math.IsNaN(r.MaxY) {
		return false
	}
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY
}

// Width returns the extent of r along the x axis.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the extent of r along the y axis.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r. Degenerate rectangles have zero area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns half the perimeter of r (the R*-tree "margin" metric).
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Center returns the center point of r.
func (r Rect) Center() (x, y float64) {
	return (r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2
}

// Intersects reports whether r and s share at least one point. Touching
// edges count as intersection, matching the paper's overlap semantics for
// "all overlapped rectangles are expected to be returned".
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	return r.MinX <= s.MinX && s.MaxX <= r.MaxX &&
		r.MinY <= s.MinY && s.MaxY <= r.MaxY
}

// ContainsPoint reports whether the point (x, y) lies inside or on the
// boundary of r.
func (r Rect) ContainsPoint(x, y float64) bool {
	return r.MinX <= x && x <= r.MaxX && r.MinY <= y && y <= r.MaxY
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Intersection returns the overlapping region of r and s and whether the
// two rectangles intersect at all. When they do not, the zero Rect is
// returned.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	if !r.Intersects(s) {
		return Rect{}, false
	}
	return Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}, true
}

// OverlapArea returns the area of the intersection of r and s, or 0 when
// they do not intersect.
func (r Rect) OverlapArea(s Rect) float64 {
	iw := math.Min(r.MaxX, s.MaxX) - math.Max(r.MinX, s.MinX)
	if iw <= 0 {
		return 0
	}
	ih := math.Min(r.MaxY, s.MaxY) - math.Max(r.MinY, s.MinY)
	if ih <= 0 {
		return 0
	}
	return iw * ih
}

// Enlargement returns the area increase of r needed to also cover s:
// Area(r ∪ s) − Area(r). The result is never negative for valid inputs.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Equal reports exact coordinate equality of r and s.
func (r Rect) Equal(s Rect) bool {
	return r.MinX == s.MinX && r.MaxX == s.MaxX &&
		r.MinY == s.MinY && r.MaxY == s.MaxY
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// DistSqToPoint returns the squared Euclidean distance from the point
// (x, y) to the nearest point of r (0 when the point lies inside r). The
// squared form avoids the sqrt on the R-tree's nearest-neighbor hot path.
func (r Rect) DistSqToPoint(x, y float64) float64 {
	dx := 0.0
	if x < r.MinX {
		dx = r.MinX - x
	} else if x > r.MaxX {
		dx = x - r.MaxX
	}
	dy := 0.0
	if y < r.MinY {
		dy = r.MinY - y
	} else if y > r.MaxY {
		dy = y - r.MaxY
	}
	return dx*dx + dy*dy
}

// FromLatLon maps WGS-84 degrees onto the unit square with the
// equirectangular projection the geo serving scenarios use: longitude
// −180..180 onto x ∈ [0, 1], latitude −90..90 onto y ∈ [0, 1]. Inputs are
// clamped to the valid ranges, so any finite coordinate lands inside the
// data space.
func FromLatLon(lat, lon float64) (x, y float64) {
	return clamp01((lon + 180) / 360), clamp01((lat + 90) / 180)
}

// ToLatLon inverts FromLatLon. Round-tripping stays within one ULP of the
// unit-square coordinate: the forward map divides by an exact power-of-two
// multiple (360 = 45·8, 180 = 45·4 — not powers of two themselves), so
// exactness is not guaranteed bit-for-bit, and callers comparing positions
// should compare unit-square coordinates, which both directions preserve
// to within 1e-12 (see TestLatLonRoundTrip).
func ToLatLon(x, y float64) (lat, lon float64) {
	return y*180 - 90, x*360 - 180
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// MBR returns the minimum bounding rectangle of rects. It returns the zero
// Rect when rects is empty.
func MBR(rects []Rect) Rect {
	if len(rects) == 0 {
		return Rect{}
	}
	out := rects[0]
	for _, r := range rects[1:] {
		out = out.Union(r)
	}
	return out
}
