package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestDegenerateRects(t *testing.T) {
	point := PointRect(0.3, 0.7)
	if !point.Valid() {
		t.Fatal("point rect invalid")
	}
	if point.Area() != 0 || point.Margin() != 0 {
		t.Fatalf("point rect area=%g margin=%g, want 0, 0", point.Area(), point.Margin())
	}
	if x, y := point.Center(); x != 0.3 || y != 0.7 {
		t.Fatalf("point rect center (%g, %g), want (0.3, 0.7)", x, y)
	}
	if !point.ContainsPoint(0.3, 0.7) {
		t.Fatal("point rect does not contain its own point")
	}
	if d := point.DistSqToPoint(0.3, 0.7); d != 0 {
		t.Fatalf("distance of point rect to its own point is %g, want 0", d)
	}

	seg := Rect{MinX: 0.1, MaxX: 0.9, MinY: 0.5, MaxY: 0.5} // horizontal segment
	if !seg.Valid() || seg.Area() != 0 {
		t.Fatalf("segment valid=%v area=%g, want true, 0", seg.Valid(), seg.Area())
	}
	if seg.Margin() != 0.8 {
		t.Fatalf("segment margin %g, want 0.8", seg.Margin())
	}
	// Degenerate rects still intersect what they touch.
	if !seg.Intersects(PointRect(0.5, 0.5)) {
		t.Fatal("segment does not intersect a point lying on it")
	}
	if got := seg.DistSqToPoint(0.5, 0.6); math.Abs(got-0.01) > 1e-15 {
		t.Fatalf("segment distance² %g, want 0.01", got)
	}
}

func TestPointsOnRegionBounds(t *testing.T) {
	r := Rect{MinX: 0.2, MaxX: 0.6, MinY: 0.3, MaxY: 0.7}
	// Corners and edge midpoints are inside (closed rectangle semantics).
	for _, p := range [][2]float64{
		{0.2, 0.3}, {0.6, 0.3}, {0.2, 0.7}, {0.6, 0.7}, // corners
		{0.4, 0.3}, {0.4, 0.7}, {0.2, 0.5}, {0.6, 0.5}, // edge midpoints
	} {
		if !r.ContainsPoint(p[0], p[1]) {
			t.Errorf("boundary point (%g, %g) not contained", p[0], p[1])
		}
		if d := r.DistSqToPoint(p[0], p[1]); d != 0 {
			t.Errorf("boundary point (%g, %g) at distance² %g, want 0", p[0], p[1], d)
		}
	}
	// A rect touching only an edge still intersects (paper overlap
	// semantics: touching counts).
	if !r.Intersects(Rect{MinX: 0.6, MaxX: 0.8, MinY: 0.3, MaxY: 0.7}) {
		t.Error("edge-touching rects do not intersect")
	}
	if !r.Intersects(PointRect(0.2, 0.3)) {
		t.Error("corner-touching point does not intersect")
	}
	// One ULP outside is outside.
	out := math.Nextafter(0.6, 1)
	if r.ContainsPoint(out, 0.5) {
		t.Error("point one ULP past MaxX contained")
	}
}

func TestFromLatLonCorners(t *testing.T) {
	cases := []struct {
		lat, lon float64
		x, y     float64
	}{
		{0, 0, 0.5, 0.5},        // null island → center
		{-90, -180, 0, 0},       // south-west corner
		{90, 180, 1, 1},         // north-east corner
		{90, -180, 0, 1},        // north-west corner
		{-90, 180, 1, 0},        // south-east corner
		{-91, -200, 0, 0},       // out-of-range clamps
		{100, 400, 1, 1},        // out-of-range clamps
		{37.7749, -122.4194, 0, 0}, // San Francisco — checked below
	}
	for _, c := range cases[:7] {
		x, y := FromLatLon(c.lat, c.lon)
		if x != c.x || y != c.y {
			t.Errorf("FromLatLon(%g, %g) = (%g, %g), want (%g, %g)", c.lat, c.lon, x, y, c.x, c.y)
		}
	}
	x, y := FromLatLon(37.7749, -122.4194)
	if x <= 0 || x >= 0.5 || y <= 0.5 || y >= 1 {
		t.Errorf("San Francisco mapped to (%g, %g), want north-west quadrant-ish (x<0.5, y>0.5)", x, y)
	}
}

func TestLatLonRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		x, y := rng.Float64(), rng.Float64()
		lat, lon := ToLatLon(x, y)
		if lat < -90 || lat > 90 || lon < -180 || lon > 180 {
			t.Fatalf("(%g, %g) left WGS-84 range: lat=%g lon=%g", x, y, lat, lon)
		}
		x2, y2 := FromLatLon(lat, lon)
		if math.Abs(x2-x) > 1e-12 || math.Abs(y2-y) > 1e-12 {
			t.Fatalf("round trip moved (%g, %g) to (%g, %g)", x, y, x2, y2)
		}
	}
	// The scenario direction too: degrees → unit square → degrees.
	for i := 0; i < 10000; i++ {
		lat := rng.Float64()*180 - 90
		lon := rng.Float64()*360 - 180
		x, y := FromLatLon(lat, lon)
		lat2, lon2 := ToLatLon(x, y)
		if math.Abs(lat2-lat) > 1e-10 || math.Abs(lon2-lon) > 1e-10 {
			t.Fatalf("round trip moved (%g, %g) to (%g, %g)", lat, lon, lat2, lon2)
		}
	}
}
