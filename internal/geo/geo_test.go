package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	tests := []struct {
		name           string
		x1, y1, x2, y2 float64
		want           Rect
	}{
		{"ordered", 0, 0, 1, 1, Rect{0, 1, 0, 1}},
		{"xSwapped", 1, 0, 0, 1, Rect{0, 1, 0, 1}},
		{"ySwapped", 0, 1, 1, 0, Rect{0, 1, 0, 1}},
		{"bothSwapped", 1, 1, 0, 0, Rect{0, 1, 0, 1}},
		{"point", 0.5, 0.5, 0.5, 0.5, Rect{0.5, 0.5, 0.5, 0.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NewRect(tt.x1, tt.y1, tt.x2, tt.y2)
			if !got.Equal(tt.want) {
				t.Errorf("NewRect(%v,%v,%v,%v) = %v, want %v",
					tt.x1, tt.y1, tt.x2, tt.y2, got, tt.want)
			}
			if !got.Valid() {
				t.Errorf("NewRect result %v not valid", got)
			}
		})
	}
}

func TestValid(t *testing.T) {
	tests := []struct {
		name string
		r    Rect
		want bool
	}{
		{"unit", Rect{0, 1, 0, 1}, true},
		{"point", Rect{1, 1, 1, 1}, true},
		{"invertedX", Rect{1, 0, 0, 1}, false},
		{"invertedY", Rect{0, 1, 1, 0}, false},
		{"nan", Rect{math.NaN(), 1, 0, 1}, false},
		{"nanMax", Rect{0, 1, 0, math.NaN()}, false},
	}
	for _, tt := range tests {
		if got := tt.r.Valid(); got != tt.want {
			t.Errorf("%s: Valid(%v) = %v, want %v", tt.name, tt.r, got, tt.want)
		}
	}
}

func TestAreaMargin(t *testing.T) {
	r := Rect{0, 2, 0, 3}
	if got := r.Area(); got != 6 {
		t.Errorf("Area = %v, want 6", got)
	}
	if got := r.Margin(); got != 5 {
		t.Errorf("Margin = %v, want 5", got)
	}
	if got := PointRect(1, 1).Area(); got != 0 {
		t.Errorf("point Area = %v, want 0", got)
	}
}

func TestIntersects(t *testing.T) {
	base := Rect{0, 1, 0, 1}
	tests := []struct {
		name string
		s    Rect
		want bool
	}{
		{"overlap", Rect{0.5, 1.5, 0.5, 1.5}, true},
		{"contained", Rect{0.25, 0.75, 0.25, 0.75}, true},
		{"containing", Rect{-1, 2, -1, 2}, true},
		{"touchEdge", Rect{1, 2, 0, 1}, true},
		{"touchCorner", Rect{1, 2, 1, 2}, true},
		{"disjointX", Rect{1.5, 2, 0, 1}, false},
		{"disjointY", Rect{0, 1, 1.5, 2}, false},
		{"same", base, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := base.Intersects(tt.s); got != tt.want {
				t.Errorf("Intersects(%v, %v) = %v, want %v", base, tt.s, got, tt.want)
			}
			// Intersection must be symmetric.
			if got := tt.s.Intersects(base); got != tt.want {
				t.Errorf("Intersects not symmetric for %v", tt.s)
			}
		})
	}
}

func TestContains(t *testing.T) {
	outer := Rect{0, 10, 0, 10}
	if !outer.Contains(Rect{1, 9, 1, 9}) {
		t.Error("outer should contain inner")
	}
	if !outer.Contains(outer) {
		t.Error("rect should contain itself")
	}
	if outer.Contains(Rect{1, 11, 1, 9}) {
		t.Error("outer should not contain rect poking out")
	}
	if !outer.ContainsPoint(10, 10) {
		t.Error("boundary point should be contained")
	}
	if outer.ContainsPoint(10.01, 5) {
		t.Error("outside point should not be contained")
	}
}

func TestUnionIntersection(t *testing.T) {
	a := Rect{0, 2, 0, 2}
	b := Rect{1, 3, 1, 3}
	u := a.Union(b)
	if !u.Equal(Rect{0, 3, 0, 3}) {
		t.Errorf("Union = %v", u)
	}
	i, ok := a.Intersection(b)
	if !ok || !i.Equal(Rect{1, 2, 1, 2}) {
		t.Errorf("Intersection = %v ok=%v", i, ok)
	}
	if _, ok := a.Intersection(Rect{5, 6, 5, 6}); ok {
		t.Error("disjoint Intersection should report ok=false")
	}
	if got := a.OverlapArea(b); got != 1 {
		t.Errorf("OverlapArea = %v, want 1", got)
	}
	if got := a.OverlapArea(Rect{5, 6, 5, 6}); got != 0 {
		t.Errorf("disjoint OverlapArea = %v, want 0", got)
	}
}

func TestEnlargement(t *testing.T) {
	a := Rect{0, 1, 0, 1}
	if got := a.Enlargement(Rect{0.2, 0.8, 0.2, 0.8}); got != 0 {
		t.Errorf("Enlargement for contained rect = %v, want 0", got)
	}
	if got := a.Enlargement(Rect{0, 2, 0, 1}); got != 1 {
		t.Errorf("Enlargement = %v, want 1", got)
	}
}

func TestMBR(t *testing.T) {
	if got := MBR(nil); !got.Equal(Rect{}) {
		t.Errorf("MBR(nil) = %v, want zero", got)
	}
	rects := []Rect{{0, 1, 0, 1}, {2, 3, -1, 0.5}, {0.5, 0.6, 0.5, 4}}
	got := MBR(rects)
	want := Rect{0, 3, -1, 4}
	if !got.Equal(want) {
		t.Errorf("MBR = %v, want %v", got, want)
	}
	for _, r := range rects {
		if !got.Contains(r) {
			t.Errorf("MBR %v does not contain member %v", got, r)
		}
	}
}

func randomRect(rng *rand.Rand) Rect {
	return NewRect(rng.Float64()*10-5, rng.Float64()*10-5,
		rng.Float64()*10-5, rng.Float64()*10-5)
}

// Property: union contains both operands and is the smallest such rect on
// each axis.
func TestPropUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randomRect(rng), randomRect(rng)
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			return false
		}
		// Minimality: each side of u must coincide with a side of a or b.
		return (u.MinX == a.MinX || u.MinX == b.MinX) &&
			(u.MaxX == a.MaxX || u.MaxX == b.MaxX) &&
			(u.MinY == a.MinY || u.MinY == b.MinY) &&
			(u.MaxY == a.MaxY || u.MaxY == b.MaxY)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Intersects is consistent with a positive-or-touching overlap
// region, and OverlapArea equals Intersection area.
func TestPropIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := randomRect(rng), randomRect(rng)
		i, ok := a.Intersection(b)
		if ok != a.Intersects(b) {
			return false
		}
		if !ok {
			return a.OverlapArea(b) == 0
		}
		if !i.Valid() || !a.Contains(i) || !b.Contains(i) {
			return false
		}
		return math.Abs(a.OverlapArea(b)-i.Area()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: enlargement is non-negative and zero iff contained.
func TestPropEnlargement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := randomRect(rng), randomRect(rng)
		e := a.Enlargement(b)
		if e < 0 {
			return false
		}
		if a.Contains(b) && e != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIntersects(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	rects := make([]Rect, 1024)
	for i := range rects {
		rects[i] = randomRect(rng)
	}
	q := Rect{-1, 1, -1, 1}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if q.Intersects(rects[i%len(rects)]) {
			n++
		}
	}
	_ = n
}

func BenchmarkUnion(b *testing.B) {
	a := Rect{0, 1, 0, 1}
	c := Rect{0.5, 2, -1, 0.5}
	var out Rect
	for i := 0; i < b.N; i++ {
		out = a.Union(c)
	}
	_ = out
}
