package catfish_test

import (
	"testing"
	"time"

	catfish "github.com/catfish-db/catfish"
)

// The facade must be sufficient to build and drive a full cluster without
// touching internal packages (this is what examples/ and downstream users
// do).
func TestPublicAPIEndToEnd(t *testing.T) {
	reg, err := catfish.NewMemoryRegion(2048, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := catfish.NewTree(reg, catfish.TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	items := catfish.UniformRects(10_000, 0.001, 1)
	if err := tree.BulkLoad(items, 0); err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	engine := catfish.NewEngine(1)
	net := catfish.NewNetwork(engine, catfish.InfiniBand100G)
	serverHost := net.NewHost("server", catfish.NewCPU(engine, 8))
	clientHost := net.NewHost("client", catfish.NewCPU(engine, 4))
	srv, err := catfish.NewServer(catfish.ServerConfig{
		Engine: engine, Host: serverHost, Tree: tree,
		Cost:              catfish.DefaultCostModel(),
		Mode:              catfish.ModeEvent,
		HeartbeatInterval: catfish.DefaultHeartbeatInterval,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := srv.Connect(clientHost, net, 16)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := catfish.NewClient(catfish.ClientConfig{
		Engine: engine, Host: clientHost, Endpoint: ep,
		Cost:     catfish.DefaultCostModel(),
		Adaptive: true, MultiIssue: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	window := catfish.NewRect(0.4, 0.4, 0.45, 0.45)
	want, _, err := tree.SearchCollect(window)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	engine.Spawn("driver", func(p *catfish.Proc) {
		defer engine.Stop()
		items, method, err := cli.Search(p, window)
		if err != nil {
			t.Error(err)
			return
		}
		if method != catfish.MethodFast && method != catfish.MethodOffload {
			t.Errorf("unexpected method %v", method)
		}
		got = len(items)
		if err := cli.Insert(p, catfish.PointRect(0.9, 0.9), 1<<40); err != nil {
			t.Error(err)
		}
	})
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if got != len(want) {
		t.Errorf("remote search found %d, local %d", got, len(want))
	}
	if tree.Len() != 10_001 {
		t.Errorf("tree len = %d after insert", tree.Len())
	}
}

func TestPublicExperimentAPI(t *testing.T) {
	res, err := catfish.RunExperiment(catfish.ExperimentConfig{
		Scheme:            catfish.SchemeCatfish,
		Dataset:           catfish.UniformRects(5_000, 0.001, 2),
		Workload:          catfish.NewMix(catfish.UniformScale{Scale: 0.001}, catfish.SkewedInserts{Edge: 0.0001}, 0, 1<<32),
		NumClients:        4,
		RequestsPerClient: 50,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kops <= 0 || res.Latency.Count != 200 {
		t.Errorf("result = %+v", res)
	}
	pts, err := catfish.RunMicro(catfish.InfiniBand100G, catfish.MicroRDMARead, []int{64}, 5, 1)
	if err != nil || len(pts) != 1 {
		t.Fatalf("micro: %v %v", pts, err)
	}
}

func TestPublicGeometryAPI(t *testing.T) {
	r := catfish.NewRect(1, 1, 0, 0)
	if !r.Valid() || r.MinX != 0 {
		t.Errorf("NewRect did not normalize: %v", r)
	}
	m := catfish.MBR([]catfish.Rect{catfish.PointRect(0, 0), catfish.PointRect(1, 1)})
	if m.Area() != 1 {
		t.Errorf("MBR area = %v", m.Area())
	}
	if catfish.DefaultHeartbeatInterval != 10*time.Millisecond {
		t.Error("heartbeat default drifted from the paper")
	}
}

func TestPublicRealNetAPI(t *testing.T) {
	reg, err := catfish.NewMemoryRegion(512, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := catfish.NewTree(reg, catfish.TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad(catfish.UniformRects(1000, 0.001, 1), 0); err != nil {
		t.Fatal(err)
	}
	srv, err := catfish.Listen("127.0.0.1:0", tree, catfish.NetServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve() //nolint:errcheck
	c, err := catfish.Connect([]string{srv.Addr().String()},
		catfish.WithForced(catfish.NetMethodOffload))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	items, method, err := c.Search(catfish.NewRect(0, 0, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if method != catfish.NetMethodOffload || len(items) != 1000 {
		t.Errorf("method %v, items %d", method, len(items))
	}
}
