package bench

import (
	"strings"
	"testing"
)

// quickOpts shrinks every figure to smoke-test size.
func quickOpts() Options { return Options{Quick: true, Seed: 1} }

func TestFig2Quick(t *testing.T) {
	table, results, err := Fig2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 { // 2 scales x 2 client counts
		t.Fatalf("results = %d", len(results))
	}
	out := table.String()
	for _, want := range []string{"scale", "serverTX_Gbps", "0.01", "1e-05"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// The bandwidth-bound scale must move more server TX bytes per op than
	// the CPU-bound scale at equal client count.
	if results[1].ServerTXGbps <= results[3].ServerTXGbps {
		t.Errorf("scale 0.01 TX %.3f should exceed scale 1e-05 TX %.3f",
			results[1].ServerTXGbps, results[3].ServerTXGbps)
	}
}

func TestFig7Quick(t *testing.T) {
	table, results, err := Fig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 { // 2 scales x 2 client counts x 3 variants
		t.Fatalf("results = %d", len(results))
	}
	// At the higher client count the event server must beat polling on
	// latency (cells are [polling, event, event-batched]).
	pollingHi, eventHi := results[3], results[4]
	if eventHi.Latency.Mean >= pollingHi.Latency.Mean {
		t.Errorf("event latency %v should beat polling %v at high client count",
			eventHi.Latency.Mean, pollingHi.Latency.Mean)
	}
	// The batched column really batched: containers were sent, and every
	// operation travelled inside one.
	batchedHi := results[5]
	if batchedHi.Batches == 0 || batchedHi.BatchedOps != batchedHi.Ops {
		t.Errorf("batched column sent %d containers carrying %d of %d ops",
			batchedHi.Batches, batchedHi.BatchedOps, batchedHi.Ops)
	}
	_ = table
}

func TestFig8Quick(t *testing.T) {
	_, results, err := Fig8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Pairs are [single, multi]: multi-issue must not be slower anywhere.
	for i := 0; i+1 < len(results); i += 2 {
		if results[i+1].Latency.Mean > results[i].Latency.Mean {
			t.Errorf("multi-issue slower at pair %d: %v vs %v",
				i/2, results[i+1].Latency.Mean, results[i].Latency.Mean)
		}
	}
}

func TestFig9Quick(t *testing.T) {
	table, err := Fig9(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := table.String()
	for _, series := range []string{"tcp-1g", "tcp-40g", "rdma-read", "rdma-write"} {
		if !strings.Contains(out, series) {
			t.Errorf("missing series %s", series)
		}
	}
}

func TestFig10And11Quick(t *testing.T) {
	thr, lat, results, err := Fig10And11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// 3 scales x 2 client counts x 5 schemes.
	if len(results) != 30 {
		t.Fatalf("results = %d", len(results))
	}
	sp := Speedups(results).String()
	for _, base := range []string{"tcp-1g", "fastmsg", "offload"} {
		if !strings.Contains(sp, base) {
			t.Errorf("speedups missing %s:\n%s", base, sp)
		}
	}
	if thr.String() == "" || lat.String() == "" {
		t.Error("empty tables")
	}
}

func TestFig12And13Quick(t *testing.T) {
	_, _, results, err := Fig12And13(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Hybrid runs must actually insert.
	for _, r := range results {
		if r.ServerStats.Inserts == 0 {
			t.Errorf("%s: no inserts in hybrid run", r.Scheme)
		}
	}
}

func TestFig14Quick(t *testing.T) {
	thr, lat, results, err := Fig14(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 { // 2 client counts x 5 schemes
		t.Fatalf("results = %d", len(results))
	}
	if thr.String() == "" || lat.String() == "" {
		t.Error("empty tables")
	}
}

func TestAblationsQuick(t *testing.T) {
	for name, fn := range map[string]func(Options) (interface{ String() string }, error){
		"n": func(o Options) (interface{ String() string }, error) { return AblationBackoffN(o) },
		"t": func(o Options) (interface{ String() string }, error) { return AblationThresholdT(o) },
		"heartbeat": func(o Options) (interface{ String() string }, error) {
			return AblationHeartbeat(o)
		},
		"multiissue": func(o Options) (interface{ String() string }, error) {
			return AblationMultiIssueDepth(o)
		},
		"chunk": func(o Options) (interface{ String() string }, error) {
			return AblationChunkSize(o)
		},
		"rootcache": func(o Options) (interface{ String() string }, error) {
			return AblationRootCache(o)
		},
		"nodecache": func(o Options) (interface{ String() string }, error) {
			return AblationNodeCache(o)
		},
		"predictor": func(o Options) (interface{ String() string }, error) {
			return AblationPredictor(o)
		},
		"framework": func(o Options) (interface{ String() string }, error) {
			return Framework(o)
		},
	} {
		table, err := fn(quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if table.String() == "" {
			t.Errorf("%s: empty table", name)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.DatasetSize != 2_000_000 || o.Requests != 600 || len(o.Clients) != 4 {
		t.Errorf("defaults = %+v", o)
	}
	q := Options{Quick: true}.withDefaults()
	if q.DatasetSize != 50_000 || q.Requests != 100 {
		t.Errorf("quick = %+v", q)
	}
	f := Options{Full: true}.withDefaults()
	if f.DatasetSize != 2_000_000 || f.Requests != 10_000 {
		t.Errorf("full = %+v", f)
	}
}
