// Geo serving scenario ablations (DESIGN.md §5.13): moving objects
// updating positions through first-class MOVE operations, remote kNN on
// both access-method families, and a Zipfian flash-crowd trace driving the
// autoscaler. The moving-objects and knn ablations run on the simulated
// fabric like the paper figures; the hotspot ablation runs on real
// localhost TCP like the autoscale ablation, because its whole point is
// live resharding under migrating load.
package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/catfish-db/catfish/internal/autoscale"
	"github.com/catfish-db/catfish/internal/client"
	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/rpcnet"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/scenario"
	"github.com/catfish-db/catfish/internal/server"
	"github.com/catfish-db/catfish/internal/shard"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/stats"
	"github.com/catfish-db/catfish/internal/telemetry"
	"github.com/catfish-db/catfish/internal/wire"
	"github.com/catfish-db/catfish/internal/workload"
)

// scenarioFleetCap bounds the moving-objects fleet: every object moves
// every tick, so the op stream scales with the fleet, not the dataset.
const scenarioFleetCap = 50_000

// AblationMovingObjects compares the three ways a fleet's position updates
// can reach the tree: the first-class MOVE op (one round trip, one latch
// acquisition), the classic delete+insert pair (two round trips, two latch
// acquisitions), and MOVEs riding the batched fast path. Each mode
// interleaves position updates with nearby-window searches 1:1 — the geo
// serving mix — on the simulated InfiniBand fabric.
func AblationMovingObjects(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	fleet := o.DatasetSize
	if fleet > scenarioFleetCap {
		fleet = scenarioFleetCap
	}
	clients := o.ablationClients()
	table := stats.NewTable("mode", "kops", "mean_lat_us", "p99_us", "server_moves", "serverCPU%")
	for _, mode := range []string{"move", "del+ins", "batched-move"} {
		res, err := runMovingObjects(o, fleet, clients, mode)
		if err != nil {
			return nil, fmt.Errorf("ablation moving %s: %w", mode, err)
		}
		table.AddRow(mode, fmtKops(res.kops), fmtDur(res.lat.Mean), fmtDur(res.lat.P99),
			fmt.Sprintf("%d", res.serverMoves),
			fmt.Sprintf("%.1f", res.cpuUtil*100))
	}
	return table, nil
}

type movingResult struct {
	kops        float64
	lat         stats.Summary
	serverMoves uint64
	cpuUtil     float64
}

func runMovingObjects(o Options, fleet, clients int, mode string) (movingResult, error) {
	e := sim.New(o.Seed)
	net := fabric.NewNetwork(e, netmodel.InfiniBand100G)
	serverCPU := sim.NewCPU(e, o.ServerCores)
	serverHost := net.NewHost("server", serverCPU)

	// Each driver owns a contiguous slice of the fleet, so no two clients
	// ever race on the same object ref.
	perClient := fleet / clients
	if perClient < 1 {
		perClient = 1
	}
	fleets := make([]*scenario.MovingObjects, clients)
	var seed []rtree.Entry
	for i := range fleets {
		rng := rand.New(rand.NewSource(o.Seed + 100 + int64(i)))
		fleets[i] = scenario.NewMovingObjects(rng, scenario.MovingConfig{
			N: perClient, RefBase: uint64(i * perClient),
		})
		seed = append(seed, fleets[i].Seed()...)
	}
	tree, err := buildTree(seed)
	if err != nil {
		return movingResult{}, err
	}
	srv, err := server.New(server.Config{
		Engine: e, Host: serverHost, Tree: tree,
		Cost:              netmodel.DefaultCostModel(),
		Mode:              server.ModeEvent,
		HeartbeatInterval: o.HeartbeatInv,
	})
	if err != nil {
		return movingResult{}, err
	}

	lat := stats.NewHistogram()
	var ops uint64
	var makespan time.Duration
	var runErr error
	wg := sim.NewWaitGroup(e)
	for i := 0; i < clients; i++ {
		i := i
		host := net.NewHost(fmt.Sprintf("c%d", i/32), sim.NewCPU(e, 28))
		ep, err := srv.Connect(host, net, 16)
		if err != nil {
			return movingResult{}, err
		}
		c, err := client.New(client.Config{
			Engine: e, Host: host, Endpoint: ep,
			Cost:         netmodel.DefaultCostModel(),
			Adaptive:     true,
			HeartbeatInv: o.HeartbeatInv,
			MultiIssue:   true,
		})
		if err != nil {
			return movingResult{}, err
		}
		wg.Add(1)
		e.Spawn(fmt.Sprintf("geo-driver-%d", i), func(p *sim.Proc) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + 500 + int64(i)))
			fl := fleets[i]
			var pending []scenario.Move
			var batch []client.BatchOp
			var results []client.BatchResult
			record := func(start time.Duration, n int) {
				d := p.Now() - start
				for j := 0; j < n; j++ {
					lat.Record(d / time.Duration(n))
				}
				ops += uint64(n)
				if p.Now() > makespan {
					makespan = p.Now()
				}
			}
			for r := 0; r < o.Requests; r++ {
				if r%2 == 1 {
					// Odd ops: "what's around this vehicle" window search.
					q := fl.Nearby(rng.Intn(fl.Len()), 0.002)
					start := p.Now()
					if _, _, err := c.Search(p, q); err != nil {
						runErr = err
						return
					}
					record(start, 1)
					continue
				}
				if len(pending) == 0 {
					pending = fl.Tick(rng, pending)
				}
				mv := pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				switch mode {
				case "move":
					start := p.Now()
					if err := c.Move(p, mv.From, mv.To, mv.Ref); err != nil {
						runErr = err
						return
					}
					record(start, 1)
				case "del+ins":
					start := p.Now()
					if err := c.Delete(p, mv.From, mv.Ref); err != nil && !errors.Is(err, client.ErrNotFound) {
						runErr = err
						return
					}
					if err := c.Insert(p, mv.To, mv.Ref); err != nil {
						runErr = err
						return
					}
					record(start, 1)
				case "batched-move":
					batch = append(batch, client.BatchOp{
						Type: wire.MsgMove, Rect: mv.From, Rect2: mv.To, Ref: mv.Ref,
					})
					if len(batch) < o.BatchSize && r+2 < o.Requests {
						continue
					}
					start := p.Now()
					results = c.ExecBatch(p, batch, results)
					for _, res := range results {
						if res.Err != nil {
							runErr = res.Err
							return
						}
					}
					record(start, len(batch))
					batch = batch[:0]
				}
			}
		})
	}
	e.Spawn("stop", func(p *sim.Proc) { wg.Wait(p); e.Stop() })
	if err := e.Run(); err != nil {
		return movingResult{}, err
	}
	if runErr != nil {
		return movingResult{}, runErr
	}
	out := movingResult{
		lat:         lat.Summarize(),
		serverMoves: srv.Stats().Moves,
		cpuUtil:     serverCPU.UtilizationTotal(),
	}
	if makespan > 0 {
		out.kops = float64(ops) / makespan.Seconds() / 1e3
	}
	return out, nil
}

// AblationKNN measures remote k-nearest-neighbor queries across k and
// across the access-method arms kNN can use. Best-first traversal cannot
// offload — every heap pop depends on all previous pops, so a client-side
// traversal degenerates into one dependent chunk-read round trip per node
// — which leaves fast messaging and the fetch/mailbox path; the adaptive
// arm runs the server-side 3-way switch (DecideServerSide). The sharded
// arm routes through the best-first cross-shard gather, whose fanout
// column shows the CoverDistSq pruning: small k touches ~1 shard of 4.
// Every 50th query is checked against a local tree.Nearest — the remote
// path must reproduce it exactly.
func AblationKNN(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	n := o.DatasetSize
	if n > 500_000 {
		n = 500_000
	}
	data := workload.UniformRectsRand(rand.New(rand.NewSource(o.Seed)), n, 0.0001)
	clients := o.ablationClients()
	table := stats.NewTable("arm", "k", "kops", "mean_lat_us", "fetch%", "fanout")
	for _, arm := range []string{"fast", "adaptive-3way", "sharded-4"} {
		for _, k := range []int{1, 10, 100} {
			res, err := runKNN(o, data, clients, arm, k)
			if err != nil {
				return nil, fmt.Errorf("ablation knn %s k=%d: %w", arm, k, err)
			}
			table.AddRow(arm, fmt.Sprintf("%d", k), fmtKops(res.kops), fmtDur(res.lat.Mean),
				fmt.Sprintf("%.1f", res.fetchFrac*100),
				fmt.Sprintf("%.2f", res.fanout))
		}
	}
	return table, nil
}

type knnResult struct {
	kops      float64
	lat       stats.Summary
	fetchFrac float64
	fanout    float64
}

func runKNN(o Options, data []rtree.Entry, clients int, arm string, k int) (knnResult, error) {
	if arm == "sharded-4" {
		return runKNNSharded(o, data, clients, k)
	}
	e := sim.New(o.Seed)
	net := fabric.NewNetwork(e, netmodel.InfiniBand100G)
	serverCPU := sim.NewCPU(e, o.ServerCores)
	serverHost := net.NewHost("server", serverCPU)
	tree, err := buildTree(data)
	if err != nil {
		return knnResult{}, err
	}
	scfg := server.Config{
		Engine: e, Host: serverHost, Tree: tree,
		Cost:              netmodel.DefaultCostModel(),
		Mode:              server.ModeEvent,
		HeartbeatInterval: o.HeartbeatInv,
	}
	if arm == "adaptive-3way" {
		scfg.FetchSlots = 64
	}
	srv, err := server.New(scfg)
	if err != nil {
		return knnResult{}, err
	}
	lat := stats.NewHistogram()
	var ops uint64
	var makespan time.Duration
	var runErr error
	cs := make([]*client.Client, clients)
	wg := sim.NewWaitGroup(e)
	for i := range cs {
		host := net.NewHost(fmt.Sprintf("c%d", i/32), sim.NewCPU(e, 28))
		ep, err := srv.Connect(host, net, 16)
		if err != nil {
			return knnResult{}, err
		}
		ccfg := client.Config{
			Engine: e, Host: host, Endpoint: ep,
			Cost:         netmodel.DefaultCostModel(),
			HeartbeatInv: o.HeartbeatInv,
		}
		if arm == "adaptive-3way" {
			ccfg.Adaptive = true
			ccfg.Fetch = true
		} else {
			ccfg.Forced = client.MethodFast
		}
		cs[i], err = client.New(ccfg)
		if err != nil {
			return knnResult{}, err
		}
	}
	for i, c := range cs {
		i, c := i, c
		wg.Add(1)
		e.Spawn(fmt.Sprintf("knn-driver-%d", i), func(p *sim.Proc) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + 700 + int64(i)))
			for r := 0; r < o.Requests; r++ {
				x, y := rng.Float64(), rng.Float64()
				start := p.Now()
				nbrs, _, err := c.Nearest(p, k, x, y)
				if err != nil {
					runErr = err
					return
				}
				lat.Record(p.Now() - start)
				ops++
				if p.Now() > makespan {
					makespan = p.Now()
				}
				if r%50 == 0 {
					// Equivalence spot check: the remote answer must be the
					// local best-first answer, bit for bit. The sim is
					// cooperative, so reading the (static) tree here races
					// with nothing.
					want, _, werr := tree.Nearest(k, x, y)
					if werr != nil {
						runErr = werr
						return
					}
					if err := sameNeighbors(nbrs, want); err != nil {
						runErr = fmt.Errorf("remote kNN diverged from local at (%g, %g): %w", x, y, err)
						return
					}
				}
			}
		})
	}
	e.Spawn("stop", func(p *sim.Proc) { wg.Wait(p); e.Stop() })
	if err := e.Run(); err != nil {
		return knnResult{}, err
	}
	if runErr != nil {
		return knnResult{}, runErr
	}
	var fast, fetch uint64
	for _, c := range cs {
		st := c.Stats()
		fast += st.FastSearches
		fetch += st.FetchSearches
	}
	out := knnResult{lat: lat.Summarize(), fanout: 1}
	if makespan > 0 {
		out.kops = float64(ops) / makespan.Seconds() / 1e3
	}
	if fast+fetch > 0 {
		out.fetchFrac = float64(fetch) / float64(fast+fetch)
	}
	return out, nil
}

func runKNNSharded(o Options, data []rtree.Entry, clients, k int) (knnResult, error) {
	const K = 4
	e := sim.New(o.Seed)
	net := fabric.NewNetwork(e, netmodel.InfiniBand100G)
	smap, err := shard.Build(data, shard.Config{K: K})
	if err != nil {
		return knnResult{}, err
	}
	assign := smap.Assign(data)
	servers := make([]*server.Server, K)
	for s := 0; s < K; s++ {
		host := net.NewHost(fmt.Sprintf("shard-%d", s), sim.NewCPU(e, o.ServerCores))
		tree, err := buildTree(assign[s])
		if err != nil {
			return knnResult{}, err
		}
		servers[s], err = server.New(server.Config{
			Engine: e, Host: host, Tree: tree,
			Cost:              netmodel.DefaultCostModel(),
			Mode:              server.ModeEvent,
			HeartbeatInterval: o.HeartbeatInv,
		})
		if err != nil {
			return knnResult{}, err
		}
	}
	lat := stats.NewHistogram()
	var ops uint64
	var makespan time.Duration
	var runErr error
	routers := make([]*shard.Router, clients)
	for i := range routers {
		host := net.NewHost(fmt.Sprintf("c%d", i/32), sim.NewCPU(e, 28))
		cs := make([]*client.Client, K)
		for s := 0; s < K; s++ {
			ep, err := servers[s].Connect(host, net, 16)
			if err != nil {
				return knnResult{}, err
			}
			cs[s], err = client.New(client.Config{
				Engine: e, Host: host, Endpoint: ep,
				Cost:         netmodel.DefaultCostModel(),
				Forced:       client.MethodFast,
				HeartbeatInv: o.HeartbeatInv,
			})
			if err != nil {
				return knnResult{}, err
			}
		}
		routers[i], err = shard.NewRouter(shard.RouterConfig{
			Engine: e, Map: smap, Clients: cs,
		})
		if err != nil {
			return knnResult{}, err
		}
	}
	wg := sim.NewWaitGroup(e)
	for i, r := range routers {
		i, r := i, r
		wg.Add(1)
		e.Spawn(fmt.Sprintf("knn-router-%d", i), func(p *sim.Proc) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + 900 + int64(i)))
			for q := 0; q < o.Requests; q++ {
				x, y := rng.Float64(), rng.Float64()
				start := p.Now()
				if _, err := r.Nearest(p, k, x, y); err != nil {
					runErr = err
					return
				}
				lat.Record(p.Now() - start)
				ops++
				if p.Now() > makespan {
					makespan = p.Now()
				}
			}
		})
	}
	e.Spawn("stop", func(p *sim.Proc) { wg.Wait(p); e.Stop() })
	if err := e.Run(); err != nil {
		return knnResult{}, err
	}
	if runErr != nil {
		return knnResult{}, runErr
	}
	var knns, fanout uint64
	for _, r := range routers {
		st := r.Stats()
		knns += st.KNNs
		fanout += st.Fanout
	}
	out := knnResult{lat: lat.Summarize()}
	if makespan > 0 {
		out.kops = float64(ops) / makespan.Seconds() / 1e3
	}
	if knns > 0 {
		out.fanout = float64(fanout) / float64(knns)
	}
	return out, nil
}

// sameNeighbors reports the first divergence between two neighbor lists.
func sameNeighbors(got, want []rtree.Neighbor) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d neighbors, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("neighbor %d is %+v, want %+v", i, got[i], want[i])
		}
	}
	return nil
}

// AblationHotspot replays a flash-crowd trace — Zipfian spatial hotspots
// whose hottest cell migrates abruptly between phases — against static
// deployments and the autoscaler, on real localhost TCP. Broad hotspot
// scans saturate the hot shard's paced TX line; a static partition cannot
// follow the crowd, while the autoscaler splits whichever cell runs hot,
// so the flash-crowd p99 (ops after the first migration) is the claim:
// autoscaling cuts it well below static-1 without overprovisioning like
// static-4 everywhere. The geo serving mix rides along: position MOVEs
// (upserts into the live tree) and kNN queries at the hotspot.
func AblationHotspot(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	n := o.DatasetSize
	if n > 20000 {
		n = 20000
	}
	rng := rand.New(rand.NewSource(o.Seed))
	data := make([]rtree.Entry, n)
	for i := range data {
		data[i] = rtree.Entry{
			Rect: randRectIn(rng, geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 0.005),
			Ref:  uint64(i),
		}
	}
	loaders := 16
	// Long enough phases that the steady crowd, not the handful of ops
	// stalled behind each reshard, decides the post-migration p99.
	opsPerLoader := o.Requests * 9
	if opsPerLoader > 7500 {
		opsPerLoader = 7500
	}
	const (
		deadline = 5 * time.Millisecond
		slo      = 5 * time.Millisecond
	)
	table := stats.NewTable("mode", "finalK", "splits", "ops", "viol%", "overloaded",
		"p99_us", "crowd_p99_us", "hotshard")
	addRow := func(mode string, r hotspotResult) {
		table.AddRow(mode,
			fmt.Sprintf("%d", r.finalK),
			fmt.Sprintf("%d", r.splits),
			fmt.Sprintf("%d", r.ops),
			fmt.Sprintf("%.2f", 100*float64(r.violations)/float64(max(r.ops, 1))),
			fmt.Sprintf("%d", r.overloaded),
			fmtDur(r.p99),
			fmtDur(r.crowdP99),
			fmt.Sprintf("%d", r.hotShard))
	}
	for _, k := range []int{1, 4} {
		r, err := runHotspotMode(o, data, k, loaders, opsPerLoader, deadline, slo)
		if err != nil {
			return nil, fmt.Errorf("ablation hotspot static K=%d: %w", k, err)
		}
		addRow(fmt.Sprintf("static-%d", k), r)
	}
	r, err := runHotspotMode(o, data, 0, loaders, opsPerLoader, deadline, slo)
	if err != nil {
		return nil, fmt.Errorf("ablation hotspot: %w", err)
	}
	addRow("autoscale", r)
	return table, nil
}

// hotspotPhases is the flash-crowd trace length: the hotspot migrates at
// every phase boundary, so phases 1.. are the post-crowd regime whose p99
// the ablation reports.
const hotspotPhases = 3

// hotspotGrid is the Zipf sampler's cell grid (16 cells at 4×4: coarse
// enough that one cell carries a real hotspot, fine enough that a split
// isolates it).
const hotspotGrid = 4

type hotspotResult struct {
	ops, violations, overloaded int
	finalK                      int
	splits                      uint64
	p99, crowdP99               time.Duration
	hotShard                    int
}

// runHotspotMode replays the flash-crowd trace against one deployment
// (staticK > 0 fixed, 0 autoscaled from K=1), reusing the autoscale
// ablation's live-resharding deployment machinery. Every loader derives
// each phase's Zipf grid from the same seed, so the whole fleet agrees on
// where the crowd is — that agreement is what makes it a flash crowd.
func runHotspotMode(o Options, data []rtree.Entry, staticK, loaders, opsPerLoader int,
	deadline, slo time.Duration) (hotspotResult, error) {
	var res hotspotResult
	k := staticK
	autoscaled := staticK == 0
	if autoscaled {
		k = 1
	}
	hb := o.HeartbeatInv
	if hb < 2*time.Millisecond {
		hb = 2 * time.Millisecond
	}
	m, err := shard.Build(data, shard.Config{K: k, MaxInsertEdge: 0.01})
	if err != nil {
		return res, err
	}
	d := &asDeploy{m: m, hb: hb}
	d.srvCfg = func() rpcnet.ServerConfig {
		return rpcnet.ServerConfig{
			HeartbeatInterval: hb,
			TXLineRateBps:     100e6,
			PaceTX:            true,
			AdmissionUtil:     0.75,
		}
	}
	defer d.close()

	assign := m.Assign(data)
	for s := 0; s < k; s++ {
		srv, addr, url, err := d.newASServer(assign[s], autoscaled)
		if err != nil {
			return res, err
		}
		d.srvs = append(d.srvs, srv)
		d.addrs = append(d.addrs, addr)
		if autoscaled {
			d.urls = append(d.urls, url)
		}
	}
	for s, srv := range d.srvs {
		if err := srv.AdoptShardMap(m, s, d.addrs); err != nil {
			return res, err
		}
	}

	routers := make([]*rpcnet.Router, loaders)
	for i := range routers {
		c, err := rpcnet.Connect(d.addrs,
			rpcnet.WithDeadline(deadline),
			rpcnet.WithSeed(o.Seed+int64(i)),
			rpcnet.WithHealthMultiple(100),
		)
		if err != nil {
			return res, err
		}
		defer c.Close()
		routers[i] = c.(*rpcnet.Router)
	}
	d.routers = routers

	// Hotspot-shard telemetry: where the crowd is, and which shard owns it.
	// The gauges read only atomics, so a scrape never touches router state.
	var hotCellBits atomic.Uint64 // packed (phase<<32 | cell) of the current hot cell
	hotOps := make([]atomic.Uint64, 16)
	reg := telemetry.NewRegistry()
	hotOwner := func() int {
		cell := int(hotCellBits.Load() & 0xffffffff)
		cw := 1.0 / hotspotGrid
		cx := (float64(cell%hotspotGrid) + 0.5) * cw
		cy := (float64(cell/hotspotGrid) + 0.5) * cw
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.m.Owner(geo.PointRect(cx, cy))
	}
	reg.GaugeFunc("catfish_hotspot_shard", func() float64 { return float64(hotOwner()) })
	for s := range hotOps {
		s := s
		reg.With("shard", fmt.Sprintf("%d", s)).CounterFunc("catfish_hotspot_ops_total", func() uint64 {
			return hotOps[s].Load()
		})
	}

	var ctl *autoscale.Controller
	var stop chan struct{}
	if autoscaled {
		// MaxK leaves headroom beyond the first hotspot's splits (the crowd
		// migrates twice more, and a controller that spent its whole split
		// budget on phase 0 cannot chase it), but not much more: every
		// split stalls in-flight ops while the peeled half streams over,
		// so an over-eager policy buys its extra shards with a reshard
		// tail that swamps the p99 it was meant to cut.
		ctl = autoscale.NewController(asScraper{d}, d, autoscale.PolicyConfig{
			TargetUtil:  0.5,
			ScaleUpUtil: 0.8,
			MaxK:        8,
			Cooldown:    25 * hb,
			TXOnly:      true,
		})
		stop = make(chan struct{})
		go ctl.Run(stop, 2*hb)
	}

	phaseGrid := func(phase int) *scenario.ZipfGrid {
		// Same seed across loaders ⇒ same permutation ⇒ the fleet agrees
		// on the hotspot; each loader still samples from its own instance
		// (rand.Zipf is not goroutine-safe).
		return scenario.NewZipfGrid(rand.New(rand.NewSource(o.Seed*31+int64(phase))), hotspotGrid, 1.4)
	}

	type loadOut struct {
		ops, violations, overloaded int
		lats, crowdLats             []time.Duration
		err                         error
	}
	outs := make([]loadOut, loaders)
	var wg sync.WaitGroup
	for li := 0; li < loaders; li++ {
		li := li
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := &outs[li]
			rng := rand.New(rand.NewSource(o.Seed + 2000 + int64(li)))
			r := routers[li]
			// Each loader's courier fleet: MOVEs are upserts, so the first
			// move of each object inserts it into the live tree.
			fleet := scenario.NewMovingObjects(rng, scenario.MovingConfig{
				N: 64, RefBase: uint64(1<<30) + uint64(li)<<20,
			})
			var pending []scenario.Move
			opsPerPhase := opsPerLoader / hotspotPhases
			for phase := 0; phase < hotspotPhases; phase++ {
				grid := phaseGrid(phase)
				if li == 0 {
					hotCellBits.Store(uint64(phase)<<32 | uint64(gridCell(grid)))
				}
				for i := 0; i < opsPerPhase; i++ {
					t0 := time.Now()
					var err error
					switch draw := rng.Float64(); {
					case draw < 0.70:
						// The crowd: broad scans at the hotspot saturate the
						// hot shard's TX line.
						x, y := grid.Point(rng)
						q := randRectIn(rng, geo.PointRect(x, y), 0.07)
						hotOps[ownerOf(d, q)%16].Add(1)
						_, _, err = r.Search(q)
					case draw < 0.80:
						// Courier position updates ride along.
						if len(pending) == 0 {
							pending = fleet.Tick(rng, pending)
						}
						mv := pending[len(pending)-1]
						pending = pending[:len(pending)-1]
						err = r.Move(mv.From, mv.To, mv.Ref)
					case draw < 0.90:
						// "Nearest drivers" at the hotspot.
						x, y := grid.Point(rng)
						_, _, err = r.Nearest(8, x, y)
					default:
						q := randRectIn(rng, geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 0.03)
						_, _, err = r.Search(q)
					}
					lat := time.Since(t0)
					out.ops++
					out.lats = append(out.lats, lat)
					if phase > 0 {
						out.crowdLats = append(out.crowdLats, lat)
					}
					if errors.Is(err, rpcnet.ErrOverloaded) {
						out.overloaded++
					}
					if err != nil || lat > slo {
						out.violations++
					}
					if err != nil && !errors.Is(err, rpcnet.ErrOverloaded) {
						out.err = err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if stop != nil {
		close(stop)
		res.splits = ctl.Stats().Splits
	}

	var lats, crowd []time.Duration
	for i := range outs {
		if outs[i].err != nil {
			return res, outs[i].err
		}
		res.ops += outs[i].ops
		res.violations += outs[i].violations
		res.overloaded += outs[i].overloaded
		lats = append(lats, outs[i].lats...)
		crowd = append(crowd, outs[i].crowdLats...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	sort.Slice(crowd, func(i, j int) bool { return crowd[i] < crowd[j] })
	if len(lats) > 0 {
		res.p99 = lats[len(lats)*99/100]
	}
	if len(crowd) > 0 {
		res.crowdP99 = crowd[len(crowd)*99/100]
	}
	res.hotShard = hotOwner()
	d.mu.Lock()
	res.finalK = d.m.K()
	d.mu.Unlock()
	return res, nil
}

// gridCell returns the hot (rank-1) cell index of g.
func gridCell(g *scenario.ZipfGrid) int {
	hot := g.HotCell()
	x, y := hot.Center()
	return int(y*hotspotGrid)*hotspotGrid + int(x*hotspotGrid)
}

// ownerOf looks up q's owning shard under the deployment's current map.
func ownerOf(d *asDeploy, q geo.Rect) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m.Owner(q)
}
