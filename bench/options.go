// Package bench regenerates every table and figure of the paper's
// evaluation. Each FigN function runs the corresponding experiment on the
// simulated cluster and returns an aligned text table whose rows mirror the
// figure's series, plus the raw results for programmatic checks.
//
// The defaults run a faithful but time-boxed configuration (the full
// 2M-rectangle tree, 600 requests per client instead of the paper's
// 10,000, and a heartbeat interval scaled to the shorter runs); Options.Full
// restores the paper's exact parameters, and Options.Quick shrinks
// everything for unit tests. EXPERIMENTS.md records paper-vs-measured
// numbers for the default configuration.
package bench

import (
	"time"

	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/workload"
)

// Options scales the experiment suite.
type Options struct {
	// DatasetSize is the tree's item count (paper: 2,000,000).
	DatasetSize int
	// Requests per client (paper: 10,000).
	Requests int
	// Clients are the client-count sweep points (paper: 32–256).
	Clients []int
	// HeartbeatInv is the heartbeat/Algorithm-1 interval. The paper uses
	// 10 ms against ~10 s runs; the scaled default keeps the same
	// heartbeats-per-run ratio for the shorter default runs.
	HeartbeatInv time.Duration
	// ServerCores per the paper's dual 14-core Broadwell.
	ServerCores int
	// BatchSize is the client batch size B used by the batched figure
	// columns (default 16); the batch ablation sweeps it explicitly.
	BatchSize int
	// Seed drives all randomness.
	Seed int64

	// Quick shrinks everything to smoke-test size.
	Quick bool
	// Full restores the paper's exact parameters (slow).
	Full bool
}

func (o Options) withDefaults() Options {
	if o.Quick {
		if o.DatasetSize == 0 {
			o.DatasetSize = 50_000
		}
		if o.Requests == 0 {
			o.Requests = 100
		}
		if len(o.Clients) == 0 {
			o.Clients = []int{8, 16}
		}
		if o.HeartbeatInv == 0 {
			o.HeartbeatInv = time.Millisecond
		}
	}
	if o.Full {
		if o.DatasetSize == 0 {
			o.DatasetSize = 2_000_000
		}
		if o.Requests == 0 {
			o.Requests = 10_000
		}
		if len(o.Clients) == 0 {
			o.Clients = []int{32, 64, 128, 256}
		}
		if o.HeartbeatInv == 0 {
			o.HeartbeatInv = 10 * time.Millisecond
		}
	}
	if o.DatasetSize == 0 {
		o.DatasetSize = 2_000_000
	}
	if o.Requests == 0 {
		o.Requests = 600
	}
	if len(o.Clients) == 0 {
		o.Clients = []int{32, 64, 128, 256}
	}
	if o.HeartbeatInv == 0 {
		o.HeartbeatInv = 2 * time.Millisecond
	}
	if o.ServerCores == 0 {
		o.ServerCores = 28
	}
	if o.BatchSize == 0 {
		o.BatchSize = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// datasetCache memoizes the uniform dataset and its bulk-loaded tree so a
// sweep pays the 2M-rectangle load once. The cached tree is only handed to
// search-only runs (inserts would leak between cells).
type datasetCache struct {
	opts    Options
	uniform []rtree.Entry
	tree    *rtree.Tree
	rea02   []rtree.Entry
	reaTree *rtree.Tree
}

func newCache(o Options) *datasetCache { return &datasetCache{opts: o} }

func (c *datasetCache) uniformData() []rtree.Entry {
	if c.uniform == nil {
		c.uniform = workload.UniformRects(c.opts.DatasetSize, 0.0001, c.opts.Seed)
	}
	return c.uniform
}

// uniformTree returns a shared pre-built tree for search-only runs.
func (c *datasetCache) uniformTree() (*rtree.Tree, error) {
	if c.tree == nil {
		t, err := buildTree(c.uniformData())
		if err != nil {
			return nil, err
		}
		c.tree = t
	}
	return c.tree, nil
}

func (c *datasetCache) rea02Data() []rtree.Entry {
	if c.rea02 == nil {
		n := workload.Rea02Size
		if c.opts.DatasetSize < 2_000_000 {
			// Scale rea02 proportionally to the configured dataset size.
			n = c.opts.DatasetSize * workload.Rea02Size / 2_000_000
			if n < 10_000 {
				n = 10_000
			}
		}
		c.rea02 = workload.Rea02Like(workload.Rea02Config{N: n, Seed: c.opts.Seed})
	}
	return c.rea02
}

func (c *datasetCache) rea02Tree() (*rtree.Tree, error) {
	if c.reaTree == nil {
		t, err := buildTree(c.rea02Data())
		if err != nil {
			return nil, err
		}
		c.reaTree = t
	}
	return c.reaTree, nil
}

// buildTree bulk-loads items into a fresh region-backed tree.
func buildTree(items []rtree.Entry) (*rtree.Tree, error) {
	const maxEntries = 64
	perLeaf := maxEntries / 2
	nodes := len(items)/perLeaf + len(items)/(perLeaf*perLeaf) + 1024
	reg, err := region.New(nodes*2, 4096)
	if err != nil {
		return nil, err
	}
	t, err := rtree.New(reg, rtree.Config{MaxEntries: maxEntries})
	if err != nil {
		return nil, err
	}
	data := append([]rtree.Entry(nil), items...)
	if err := t.BulkLoad(data, 0); err != nil {
		return nil, err
	}
	return t, nil
}
