package bench

import (
	"fmt"
	"time"

	"github.com/catfish-db/catfish/internal/cluster"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/stats"
	"github.com/catfish-db/catfish/internal/workload"
)

// ablationConfig is the common saturated-server setup the ablations vary:
// Catfish under the CPU-bound workload, where adaptivity matters most.
func (o Options) ablationConfig(cache *datasetCache, clients int) (cluster.Config, error) {
	tree, err := cache.uniformTree()
	if err != nil {
		return cluster.Config{}, err
	}
	return cluster.Config{
		Scheme:            cluster.SchemeCatfish,
		PrebuiltTree:      tree,
		Workload:          searchMix(workload.UniformScale{Scale: 0.00001}),
		NumClients:        clients,
		RequestsPerClient: o.Requests,
		ServerCores:       o.ServerCores,
		HeartbeatInv:      o.HeartbeatInv,
		Seed:              o.Seed,
	}, nil
}

func (o Options) ablationClients() int {
	n := o.Clients[len(o.Clients)-1]
	if n > 128 {
		n = 128
	}
	return n
}

// AblationBackoffN sweeps Algorithm 1's back-off window N (paper default 8).
func AblationBackoffN(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	cache := newCache(o)
	clients := o.ablationClients()
	table := stats.NewTable("N", "kops", "mean_lat_us", "offload%", "serverCPU%")
	for _, n := range []int{1, 4, 8, 16, 64} {
		cfg, err := o.ablationConfig(cache, clients)
		if err != nil {
			return nil, err
		}
		cfg.N = n
		res, err := cluster.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation N=%d: %w", n, err)
		}
		table.AddRow(fmt.Sprintf("%d", n), fmtKops(res.Kops), fmtDur(res.Latency.Mean),
			fmt.Sprintf("%.1f", res.OffloadFraction*100),
			fmt.Sprintf("%.1f", res.ServerCPUUtil*100))
	}
	return table, nil
}

// AblationThresholdT sweeps the busy threshold T (paper default 0.95).
func AblationThresholdT(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	cache := newCache(o)
	clients := o.ablationClients()
	table := stats.NewTable("T", "kops", "mean_lat_us", "offload%", "serverCPU%")
	for _, t := range []float64{0.5, 0.8, 0.95, 0.99} {
		cfg, err := o.ablationConfig(cache, clients)
		if err != nil {
			return nil, err
		}
		cfg.T = t
		res, err := cluster.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation T=%g: %w", t, err)
		}
		table.AddRow(fmt.Sprintf("%.2f", t), fmtKops(res.Kops), fmtDur(res.Latency.Mean),
			fmt.Sprintf("%.1f", res.OffloadFraction*100),
			fmt.Sprintf("%.1f", res.ServerCPUUtil*100))
	}
	return table, nil
}

// AblationHeartbeat sweeps the heartbeat interval (paper default 10 ms).
func AblationHeartbeat(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	cache := newCache(o)
	clients := o.ablationClients()
	table := stats.NewTable("interval", "kops", "mean_lat_us", "offload%")
	for _, inv := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 10 * time.Millisecond} {
		cfg, err := o.ablationConfig(cache, clients)
		if err != nil {
			return nil, err
		}
		cfg.HeartbeatInv = inv
		res, err := cluster.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation inv=%v: %w", inv, err)
		}
		table.AddRow(inv.String(), fmtKops(res.Kops), fmtDur(res.Latency.Mean),
			fmt.Sprintf("%.1f", res.OffloadFraction*100))
	}
	return table, nil
}

// AblationMultiIssueDepth sweeps the data QP send-queue depth bounding
// outstanding one-sided reads (1 = single-issue).
func AblationMultiIssueDepth(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	cache := newCache(o)
	tree, err := cache.uniformTree()
	if err != nil {
		return nil, err
	}
	table := stats.NewTable("depth", "mean_lat_us", "kops")
	for _, depth := range []int{1, 2, 4, 16, 64} {
		res, err := cluster.Run(cluster.Config{
			Scheme:            cluster.SchemeOffloadMulti,
			PrebuiltTree:      tree,
			Workload:          searchMix(workload.UniformScale{Scale: 0.01}),
			NumClients:        1,
			RequestsPerClient: o.Requests,
			ServerCores:       o.ServerCores,
			MultiIssueDepth:   depth,
			Seed:              o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation depth=%d: %w", depth, err)
		}
		table.AddRow(fmt.Sprintf("%d", depth), fmtDur(res.Latency.Mean), fmtKops(res.Kops))
	}
	return table, nil
}

// AblationRootCache compares offloaded traversal with and without the
// client-side root cache extension (heartbeat-versioned invalidation).
func AblationRootCache(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	cache := newCache(o)
	tree, err := cache.uniformTree()
	if err != nil {
		return nil, err
	}
	table := stats.NewTable("root_cache", "mean_lat_us", "kops", "nodes_fetched")
	for _, cached := range []bool{false, true} {
		res, err := cluster.Run(cluster.Config{
			Scheme:            cluster.SchemeOffloadMulti,
			PrebuiltTree:      tree,
			Workload:          searchMix(workload.UniformScale{Scale: 0.00001}),
			NumClients:        8,
			RequestsPerClient: o.Requests,
			ServerCores:       o.ServerCores,
			HeartbeatInv:      o.HeartbeatInv,
			CacheRoot:         cached,
			Seed:              o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation rootcache=%v: %w", cached, err)
		}
		table.AddRow(fmt.Sprintf("%v", cached), fmtDur(res.Latency.Mean),
			fmtKops(res.Kops), fmt.Sprintf("%d", res.NodesFetched))
	}
	return table, nil
}

// AblationNodeCache sweeps the capacity of the client-side version-
// validated node cache on the offload-heavy small-scope workload (capacity
// 0 is the seed behaviour: every internal node fetched on every search).
func AblationNodeCache(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	cache := newCache(o)
	tree, err := cache.uniformTree()
	if err != nil {
		return nil, err
	}
	table := stats.NewTable("capacity", "mean_lat_us", "kops", "nodes_fetched",
		"reads_per_search", "hit%", "saved_MB")
	for _, capacity := range []int{0, 8, 64, 512} {
		res, err := cluster.Run(cluster.Config{
			Scheme:            cluster.SchemeOffloadMulti,
			PrebuiltTree:      tree,
			Workload:          searchMix(workload.UniformScale{Scale: 0.00001}),
			NumClients:        8,
			RequestsPerClient: o.Requests,
			ServerCores:       o.ServerCores,
			HeartbeatInv:      o.HeartbeatInv,
			NodeCache:         capacity,
			Seed:              o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation nodecache=%d: %w", capacity, err)
		}
		hits := res.CacheHits + res.CacheVerified
		hitPct := 0.0
		if lookups := hits + res.CacheMisses; lookups > 0 {
			hitPct = 100 * float64(hits) / float64(lookups)
		}
		table.AddRow(fmt.Sprintf("%d", capacity), fmtDur(res.Latency.Mean),
			fmtKops(res.Kops), fmt.Sprintf("%d", res.NodesFetched),
			fmt.Sprintf("%.2f", res.OffloadReadsPerSearch),
			fmt.Sprintf("%.1f", hitPct),
			fmt.Sprintf("%.1f", float64(res.CacheBytesSaved)/(1<<20)))
	}
	return table, nil
}

// AblationPrefetch sweeps speculative prefetching and merged adjacent
// reads on the offload-heavy workload (DESIGN.md §5.9), in the two
// regimes the read path sees. Both run with the node cache sized to the
// internal levels and the paper's 10 ms heartbeat interval (the bench
// default of 2 ms quintuples the lease-mandated revalidation traffic and
// buries the demand floor the sweep is probing; pinned here because the
// interval is part of what the ablation measures, like the shards
// ablation's fixed tree size). "point" rows run small-scope queries at
// the default 4 KB chunk: demand traffic is ~one leaf per search and the
// question is the absolute WQE floor — the (off, span 1) row is the seed
// read path bit-for-bit and the full combination targets < 1.2 posted
// WQEs per offloaded search. "scan" rows run wide queries at a 1 KB
// chunk, where a search demands runs of dozens of preorder-adjacent
// leaves and the NIC is bound by per-message overhead rather than
// bandwidth — the regime where coalescing and revalidation-hinted
// speculation actually pay. Hits, waste, and the merge ratio are
// reported separately so the two mechanisms can be judged on their own.
func AblationPrefetch(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	items := newCache(o).uniformData()
	clients := o.ablationClients()
	table := stats.NewTable("workload", "prefetch", "span", "mean_lat_us", "p99_us",
		"kops", "wqes_per_search", "merge_ratio", "pf_hits", "pf_waste")
	regimes := []struct {
		name       string
		scale      float64
		chunk      int
		maxEntries int
		nodeCache  int
	}{
		{"point", 0.00001, 4096, 64, 512},
		{"scan", 0.05, 1024, 22, 1024},
	}
	for _, rg := range regimes {
		for _, pt := range []struct{ prefetch, span int }{
			{0, 1}, {0, 4}, {64, 1}, {64, 4}, {64, 8},
		} {
			res, err := cluster.Run(cluster.Config{
				Scheme:            cluster.SchemeOffloadMulti,
				Dataset:           items,
				Workload:          searchMix(workload.UniformScale{Scale: rg.scale}),
				NumClients:        clients,
				RequestsPerClient: o.Requests,
				ServerCores:       o.ServerCores,
				HeartbeatInv:      10 * time.Millisecond,
				ChunkSize:         rg.chunk,
				MaxEntries:        rg.maxEntries,
				NodeCache:         rg.nodeCache,
				Prefetch:          pt.prefetch,
				MergeSpan:         pt.span,
				Seed:              o.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("ablation prefetch=%d span=%d (%s): %w",
					pt.prefetch, pt.span, rg.name, err)
			}
			table.AddRow(rg.name, fmt.Sprintf("%d", pt.prefetch), fmt.Sprintf("%d", pt.span),
				fmtDur(res.Latency.Mean), fmtDur(res.Latency.P99), fmtKops(res.Kops),
				fmt.Sprintf("%.2f", res.OffloadWQEsPerSearch),
				fmt.Sprintf("%.2f", res.MergeRatio),
				fmt.Sprintf("%d", res.PrefetchHits),
				fmt.Sprintf("%d", res.PrefetchWaste))
		}
	}
	return table, nil
}

// AblationBatchSize sweeps the client batch size B under event-mode fast
// messaging at 32 connections. B=1 is bit-for-bit the unbatched system;
// larger batches amortize the per-request ring write, completion event,
// latch acquisition, and fixed dispatch cost across the batch.
func AblationBatchSize(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	cache := newCache(o)
	tree, err := cache.uniformTree()
	if err != nil {
		return nil, err
	}
	clients := 32
	if o.Quick {
		clients = 8
	}
	table := stats.NewTable("B", "kops", "p50_us", "p99_us", "batches", "serverCPU%")
	for _, b := range []int{1, 4, 16, 64} {
		res, err := cluster.Run(cluster.Config{
			Scheme:            cluster.SchemeFastEvent,
			PrebuiltTree:      tree,
			Workload:          searchMix(workload.UniformScale{Scale: 0.00001}),
			NumClients:        clients,
			RequestsPerClient: o.Requests,
			ServerCores:       o.ServerCores,
			BatchSize:         b,
			Seed:              o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation batch=%d: %w", b, err)
		}
		table.AddRow(fmt.Sprintf("%d", b), fmtKops(res.Kops),
			fmtDur(res.Latency.P50), fmtDur(res.Latency.P99),
			fmt.Sprintf("%d", res.Batches),
			fmt.Sprintf("%.1f", res.ServerCPUUtil*100))
	}
	return table, nil
}

// AblationPredictor compares the paper's most-recent-value utilization
// predictor with the EWMA extension under the saturated workload.
func AblationPredictor(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	cache := newCache(o)
	clients := o.ablationClients()
	table := stats.NewTable("predictor", "kops", "mean_lat_us", "offload%")
	for _, alpha := range []float64{0, 0.3, 0.7} {
		cfg, err := o.ablationConfig(cache, clients)
		if err != nil {
			return nil, err
		}
		cfg.PredSmoothing = alpha
		res, err := cluster.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation alpha=%g: %w", alpha, err)
		}
		name := "latest (paper)"
		if alpha > 0 {
			name = fmt.Sprintf("ewma a=%.1f", alpha)
		}
		table.AddRow(name, fmtKops(res.Kops), fmtDur(res.Latency.Mean),
			fmt.Sprintf("%.1f", res.OffloadFraction*100))
	}
	return table, nil
}

// AblationShards sweeps the shard count K of the spatially partitioned
// deployment (K=1 is bit for bit the single-server system). Each K
// partitions the dataset differently, so the runs share the dataset but
// each builds its shards' trees afresh — PrebuiltTree cannot be reused.
func AblationShards(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	cache := newCache(o)
	clients := o.ablationClients()
	table := stats.NewTable("K", "kops", "mean_lat_us", "fanout", "offload%", "serverCPU%")
	for _, k := range []int{1, 2, 4, 8} {
		res, err := cluster.Run(cluster.Config{
			Scheme:            cluster.SchemeCatfish,
			Dataset:           cache.uniformData(),
			Workload:          searchMix(workload.UniformScale{Scale: 0.00001}),
			NumClients:        clients,
			RequestsPerClient: o.Requests,
			ServerCores:       o.ServerCores,
			HeartbeatInv:      o.HeartbeatInv,
			Shards:            k,
			Seed:              o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation shards=%d: %w", k, err)
		}
		fanout := res.FanoutPerSearch
		if k <= 1 {
			fanout = 1 // single-server path: every search "targets" the one server
		}
		table.AddRow(fmt.Sprintf("%d", k), fmtKops(res.Kops), fmtDur(res.Latency.Mean),
			fmt.Sprintf("%.2f", fanout),
			fmt.Sprintf("%.1f", res.OffloadFraction*100),
			fmt.Sprintf("%.1f", res.ServerCPUUtil*100))
	}
	return table, nil
}

// AblationFetch compares the three access methods and both switch policies
// in the two regimes remote result fetching targets (DESIGN.md §5.10). The
// "large-scope" regime runs wide queries on the full-rate fabric: results
// dominate the server's send-engine traffic, and the fetch arm must move
// that payload onto the responder engine (readTX), cutting send-engine
// bytes per search well below the fast-messaging arm's. The "mixed" regime
// draws query scales from a power law spanning point lookups to wide scans
// and narrows the NIC to a fraction of line rate, so the send engine — not
// the CPU — saturates first: point lookups still favor fast messaging,
// wide scans drown the send engine, and offloaded traversal pays for every
// 4 KB node over the narrow wire. No static method wins both, which is
// exactly the case for the 3-way switch. The inline threshold is pinned low
// so result size, not the threshold, decides delivery; non-fetch arms
// ignore it.
func AblationFetch(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	items := newCache(o).uniformData()
	clients := o.ablationClients()
	table := stats.NewTable("workload", "scheme", "kops", "mean_lat_us",
		"sendTX_KB_per_op", "readTX_gbps", "fetch%", "offload%", "serverCPU%")
	// The mixed regime's fabric: InfiniBand timing with the line rate
	// narrowed so wide-scan result traffic saturates the send engine.
	narrow := netmodel.InfiniBand100G
	narrow.Name = "ib-narrow"
	narrow.BandwidthBps = 10e9
	regimes := []struct {
		name    string
		gen     workload.QueryGen
		profile netmodel.Profile
	}{
		{"large-scope", workload.UniformScale{Scale: 0.05}, netmodel.InfiniBand100G},
		{"mixed", workload.PowerLawScale{Min: 0.00001, Max: 0.05, Exponent: -0.5}, narrow},
	}
	arms := []struct {
		name   string
		scheme cluster.Scheme
	}{
		{"fastmsg", cluster.SchemeFastEvent},
		{"offload", cluster.SchemeOffloadMulti},
		{"fetch", cluster.SchemeFetch},
		{"catfish-2way", cluster.SchemeCatfish},
		{"catfish-3way", cluster.SchemeCatfish3},
	}
	for _, rg := range regimes {
		for _, arm := range arms {
			sch := arm.scheme
			sch.Profile = rg.profile
			res, err := cluster.Run(cluster.Config{
				Scheme:            sch,
				Dataset:           items,
				Workload:          searchMix(rg.gen),
				NumClients:        clients,
				RequestsPerClient: o.Requests,
				ServerCores:       o.ServerCores,
				HeartbeatInv:      o.HeartbeatInv,
				FetchInlineMax:    16,
				Seed:              o.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("ablation fetch %s/%s: %w", rg.name, arm.name, err)
			}
			sendBytes := res.ServerTXGbps * 1e9 / 8 * res.Makespan.Seconds()
			table.AddRow(rg.name, arm.name, fmtKops(res.Kops), fmtDur(res.Latency.Mean),
				fmt.Sprintf("%.2f", sendBytes/float64(res.Ops)/1024),
				fmt.Sprintf("%.2f", res.ServerReadTXGbps),
				fmt.Sprintf("%.1f", res.FetchFraction*100),
				fmt.Sprintf("%.1f", res.OffloadFraction*100),
				fmt.Sprintf("%.1f", res.ServerCPUUtil*100))
		}
	}
	return table, nil
}

// AblationChunkSize sweeps the region chunk size (node fan-out follows the
// chunk capacity), trading per-read bytes against tree height.
func AblationChunkSize(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	table := stats.NewTable("chunk_bytes", "fanout", "height", "offload_lat_us", "offload_kops")
	items := newCache(o).uniformData()
	for _, chunk := range []int{1024, 4096, 16384} {
		maxEntries := (chunk/64*56 - 16) / 40
		if maxEntries > 64 {
			maxEntries = 64
		}
		res, err := cluster.Run(cluster.Config{
			Scheme:            cluster.SchemeOffloadMulti,
			Dataset:           items,
			Workload:          searchMix(workload.UniformScale{Scale: 0.0001}),
			NumClients:        8,
			RequestsPerClient: o.Requests,
			ServerCores:       o.ServerCores,
			ChunkSize:         chunk,
			MaxEntries:        maxEntries,
			Seed:              o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation chunk=%d: %w", chunk, err)
		}
		// Height is recomputed from the run's dataset size and fan-out.
		table.AddRow(fmt.Sprintf("%d", chunk), fmt.Sprintf("%d", maxEntries),
			"-", fmtDur(res.Latency.Mean), fmtKops(res.Kops))
	}
	return table, nil
}

// AblationFailover measures the cost of synchronous replication and the
// effect of a mid-run primary crash (DESIGN.md §5.11). R=1 is the
// unreplicated sharded baseline; R=2/R=3 pay one synchronous backup ack
// per write. The "kill" rows crash shard 0's primary mid-run: writes to
// that shard stall for at most one health window, the router promotes the
// highest-caught-up backup, and the post-run verification replays random
// queries against a brute-force ground truth including every acknowledged
// insert — zero lost acknowledged writes or the run fails.
func AblationFailover(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	cache := newCache(o)
	clients := o.ablationClients()
	table := stats.NewTable("R", "kill", "kops", "mean_lat_us", "promotions",
		"backup_reads", "repl_records", "skipped", "verified")
	for _, r := range []int{1, 2, 3} {
		for _, kill := range []bool{false, true} {
			if r == 1 && kill {
				continue // no backup to promote: an unreplicated crash is data loss
			}
			cfg := cluster.Config{
				Scheme:  cluster.SchemeCatfish,
				Dataset: cache.uniformData(),
				Workload: workload.NewMix(workload.UniformScale{Scale: 0.00001},
					workload.SkewedInserts{Edge: 0.0001}, 0.1, 1<<32),
				NumClients:        clients,
				RequestsPerClient: o.Requests,
				ServerCores:       o.ServerCores,
				HeartbeatInv:      o.HeartbeatInv,
				Shards:            2,
				Replicas:          r,
				VerifyQueries:     40,
				Seed:              o.Seed,
			}
			if kill {
				cfg.FailAfter = 50 * time.Microsecond
				cfg.FailShard = 0
			}
			res, err := cluster.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("ablation failover R=%d kill=%v: %w", r, kill, err)
			}
			table.AddRow(fmt.Sprintf("%d", r), fmt.Sprintf("%v", kill),
				fmtKops(res.Kops), fmtDur(res.Latency.Mean),
				fmt.Sprintf("%d", res.Promotions),
				fmt.Sprintf("%d", res.BackupReads),
				fmt.Sprintf("%d", res.ReplRecords),
				fmt.Sprintf("%d", res.SkippedSearches),
				"ok")
		}
	}
	return table, nil
}
