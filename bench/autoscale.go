package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/catfish-db/catfish/internal/autoscale"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rpcnet"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/shard"
	"github.com/catfish-db/catfish/internal/stats"
	"github.com/catfish-db/catfish/internal/telemetry"
)

// The autoscale ablation runs on real localhost TCP (unlike the simulated
// ablations): the autoscaler's whole job is driving live servers through
// the resharding wire protocol, so there is nothing honest to measure in
// simulation. The workload is a diurnal replay with spatial skew — load
// concentrates on one hot district during the midday peak — which is the
// regime where autoscaling beats any static partitioning: a static map
// splits the plane by entry count, so the hot district stays inside one
// cell and saturates its server no matter how large K is, while the
// autoscaler recursively subdivides exactly the cells that run hot.
//
// diurnalPhases is the replayed day: fraction of operations per phase, the
// probability an operation targets the hot district, and per-op think time.
// The think time is what makes the day diurnal: the loaders are closed
// loops, so without it they'd hold the TX line saturated around the clock
// and the autoscaler would see every phase as "hot" — nominating whichever
// shard a night-time sample happened to catch busy and burning MaxK on
// cold cells before the real peak arrives. Pausing the off-peak phases
// keeps their utilization under the scale-up threshold, so splits can only
// fire while the hot district is actually the bottleneck.
var diurnalPhases = []struct {
	frac, hot float64
	pause     time.Duration
}{
	{0.15, 0.05, 2 * time.Millisecond},   // night: light, uniform
	{0.20, 0.45, 0},                      // morning ramp
	{0.45, 0.95, 0},                      // midday peak on the hot district
	{0.20, 0.40, 500 * time.Microsecond}, // evening
}

// hotDistrict is the spatial concentration target of the peak phases. It
// is exactly the lower-left quadrant: a static count-median partition of
// the uniform dataset puts it inside ONE cell at every K in the sweep,
// while the autoscaler's recursive splits of whichever cell runs hot cut
// through it and divide the peak load.
var hotDistrict = geo.Rect{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 0.5}

// asDeploy is one live localhost deployment under the ablation: servers,
// their addresses and scrape URLs, and the routers driving load (read by
// the drain goroutine to wait for map convergence).
type asDeploy struct {
	mu      sync.Mutex
	m       *shard.Map
	srvs    []*rpcnet.Server
	addrs   []string
	urls    []string
	metrics []*http.Server
	hb      time.Duration
	srvCfg  func() rpcnet.ServerConfig

	routers []*rpcnet.Router // fixed after load start; drain polls Map()
}

// newASServer starts one server over its assigned entries (nil for an
// empty reshard target) and, when scraped is true, an HTTP /metrics
// endpoint for its registry.
func (d *asDeploy) newASServer(entries []rtree.Entry, scraped bool) (*rpcnet.Server, string, string, error) {
	reg, err := region.New(1<<15, 4096)
	if err != nil {
		return nil, "", "", err
	}
	tree, err := rtree.New(reg, rtree.Config{MaxEntries: 16})
	if err != nil {
		return nil, "", "", err
	}
	if len(entries) > 0 {
		if err := tree.BulkLoad(append([]rtree.Entry(nil), entries...), 0); err != nil {
			return nil, "", "", err
		}
	}
	cfg := d.srvCfg()
	cfg.Metrics = telemetry.NewRegistry()
	srv, err := rpcnet.Listen("127.0.0.1:0", tree, cfg)
	if err != nil {
		return nil, "", "", err
	}
	go srv.Serve() //nolint:errcheck // returns on Close
	url := ""
	if scraped {
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			srv.Close()
			return nil, "", "", lerr
		}
		mux := http.NewServeMux()
		mreg := cfg.Metrics
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			mreg.WritePrometheus(w) //nolint:errcheck // scrape best-effort
		})
		hs := &http.Server{Handler: mux}
		go hs.Serve(ln) //nolint:errcheck // returns on Close
		d.metrics = append(d.metrics, hs)
		url = "http://" + ln.Addr().String() + "/metrics"
	}
	return srv, srv.Addr().String(), url, nil
}

func (d *asDeploy) close() {
	for _, hs := range d.metrics {
		hs.Close()
	}
	for _, s := range d.srvs {
		s.Close()
	}
}

// Split implements autoscale.Actuator over the live resharding path:
// start an empty server, stream the peeled half over under PrepareReshard,
// publish the committed map to every server, and drain the dual-write once
// the load routers have adopted the bumped version.
func (d *asDeploy) Split(s int) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s < 0 || s >= len(d.srvs) {
		return d.m.K(), fmt.Errorf("split of unknown shard %d", s)
	}
	newSrv, newAddr, url, err := d.newASServer(nil, true)
	if err != nil {
		return d.m.K(), err
	}
	nm, err := d.srvs[s].PrepareReshard(newAddr)
	if err != nil {
		newSrv.Close()
		return d.m.K(), err
	}
	newAddrs := append(append([]string(nil), d.addrs...), newAddr)
	if err := newSrv.AdoptShardMap(nm, nm.K()-1, newAddrs); err != nil {
		newSrv.Close()
		return d.m.K(), err
	}
	if _, err := d.srvs[s].CommitReshard(); err != nil {
		newSrv.Close()
		return d.m.K(), err
	}
	for i, srv := range d.srvs {
		if i != s {
			if err := srv.AdoptShardMap(nm, i, newAddrs); err != nil {
				return d.m.K(), err
			}
		}
	}
	d.m = nm
	d.srvs = append(d.srvs, newSrv)
	d.addrs = newAddrs
	d.urls = append(d.urls, url)
	old := d.srvs[s]
	go d.drainAfterAdoption(old, nm.Version)
	if os.Getenv("CATFISH_AS_DEBUG") != "" {
		fmt.Fprintf(os.Stderr, "[autoscale] split shard %d -> K=%d at %s\n",
			s, nm.K(), time.Now().Format("15:04:05.000"))
	}
	return nm.K(), nil
}

// drainAfterAdoption ends a split's dual-write window once every load
// router serves the committed map (bounded wait: a router that never
// converges still gets correct answers from the dual-written old shard, so
// draining on timeout costs only the moved region's duplication).
func (d *asDeploy) drainAfterAdoption(old *rpcnet.Server, version uint64) {
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, r := range d.routers {
			if r.Map().Version != version {
				all = false
				break
			}
		}
		if all {
			break
		}
		time.Sleep(d.hb)
	}
	old.DrainSplit() //nolint:errcheck // shed duplication is benign here
}

// scrape implements autoscale.Scraper over the deployment's current (and
// growing) endpoint set.
type asScraper struct{ d *asDeploy }

func (a asScraper) Scrape() ([]autoscale.Sample, error) {
	a.d.mu.Lock()
	urls := append([]string(nil), a.d.urls...)
	a.d.mu.Unlock()
	h := &autoscale.HTTPScraper{URLs: urls, Client: &http.Client{Timeout: time.Second}}
	return h.Scrape()
}

// asResult aggregates one deployment run.
type asResult struct {
	ops, violations, overloaded int
	finalK                      int
	splits                      uint64
	p99                         time.Duration
}

// runAutoscaleMode replays the diurnal workload against one deployment:
// staticK > 0 serves a fixed map, staticK == 0 starts at K=1 under the
// controller. SLO violations count operations that errored (admission
// sheds included, after the router's retry budget) or exceeded slo.
func runAutoscaleMode(o Options, data []rtree.Entry, staticK int,
	loaders, opsPerLoader int, deadline, slo time.Duration) (asResult, error) {
	var res asResult
	k := staticK
	autoscaled := staticK == 0
	if autoscaled {
		k = 1
	}
	hb := o.HeartbeatInv
	if hb < 2*time.Millisecond {
		hb = 2 * time.Millisecond
	}
	m, err := shard.Build(data, shard.Config{K: k, MaxInsertEdge: 0.01})
	if err != nil {
		return res, err
	}
	d := &asDeploy{m: m, hb: hb}
	d.srvCfg = func() rpcnet.ServerConfig {
		return rpcnet.ServerConfig{
			HeartbeatInterval: hb,
			// The modeled per-server capacity is the TX line: PaceTX
			// enforces a 100 Mbps NIC per server, so splitting a hot shard
			// genuinely doubles the hot district's aggregate capacity even
			// on a single-core bench machine (pacing sleeps burn no CPU).
			// Admission arms at 0.75 of the line so the saturated shard
			// sheds deadline-carrying load instead of queueing it.
			TXLineRateBps: 100e6,
			PaceTX:        true,
			AdmissionUtil: 0.75,
		}
	}
	defer d.close()

	assign := m.Assign(data)
	for s := 0; s < k; s++ {
		srv, addr, url, err := d.newASServer(assign[s], autoscaled)
		if err != nil {
			return res, err
		}
		d.srvs = append(d.srvs, srv)
		d.addrs = append(d.addrs, addr)
		if autoscaled {
			d.urls = append(d.urls, url)
		}
	}
	// The committed map must carry the address table for resharding.
	for s, srv := range d.srvs {
		if err := srv.AdoptShardMap(m, s, d.addrs); err != nil {
			return res, err
		}
	}

	routers := make([]*rpcnet.Router, loaders)
	for i := range routers {
		c, err := rpcnet.Connect(d.addrs,
			rpcnet.WithDeadline(deadline),
			rpcnet.WithSeed(o.Seed+int64(i)),
			// No replicas to fail over to: a generous liveness window keeps
			// scheduling hiccups on the shared bench machine from reading as
			// dead shards. (Also forces the Router shape at K=1, which the
			// autoscaled mode needs for live map adoption.)
			rpcnet.WithHealthMultiple(100),
		)
		if err != nil {
			return res, err
		}
		defer c.Close()
		routers[i] = c.(*rpcnet.Router)
	}
	d.routers = routers

	var ctl *autoscale.Controller
	var stop chan struct{}
	if autoscaled {
		ctl = autoscale.NewController(asScraper{d}, d, autoscale.PolicyConfig{
			TargetUtil:  0.5,
			ScaleUpUtil: 0.7,
			MaxK:        4,
			Cooldown:    10 * hb,
			// The modeled capacity is the paced TX line; CPU on the
			// shared bench box reflects every co-located server plus the
			// loaders and would nominate hot shards at random.
			TXOnly: true,
		})
		stop = make(chan struct{})
		go ctl.Run(stop, 2*hb)
	}

	type loadOut struct {
		ops, violations, overloaded int
		lats                        []time.Duration
		err                         error
	}
	outs := make([]loadOut, loaders)
	var wg sync.WaitGroup
	for li := 0; li < loaders; li++ {
		li := li
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := &outs[li]
			rng := rand.New(rand.NewSource(o.Seed + 1000 + int64(li)))
			r := routers[li]
			nextRef := uint64(1<<30) + uint64(li)<<20
			out.lats = make([]time.Duration, 0, opsPerLoader)
			for phi, ph := range diurnalPhases {
				if li == 0 && os.Getenv("CATFISH_AS_DEBUG") != "" {
					fmt.Fprintf(os.Stderr, "[autoscale] loader0 phase %d (hot=%.2f) at %s\n",
						phi, ph.hot, time.Now().Format("15:04:05.000"))
				}
				n := int(ph.frac * float64(opsPerLoader))
				for i := 0; i < n; i++ {
					var q geo.Rect
					if rng.Float64() < ph.hot {
						// Hot queries are broad district scans: ~100-item
						// results whose responses saturate the TX line.
						q = randRectIn(rng, hotDistrict, 0.07)
					} else {
						q = randRectIn(rng, geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 0.03)
					}
					t0 := time.Now()
					var err error
					if rng.Float64() < 0.1 {
						err = r.Insert(randRectIn(rng, q, 0.001), nextRef)
						nextRef++
					} else {
						_, _, err = r.Search(q)
					}
					lat := time.Since(t0)
					out.ops++
					out.lats = append(out.lats, lat)
					if errors.Is(err, rpcnet.ErrOverloaded) {
						out.overloaded++
					}
					if err != nil || lat > slo {
						out.violations++
					}
					if err != nil && !errors.Is(err, rpcnet.ErrOverloaded) {
						// Any non-shed error is a correctness failure of the
						// deployment, not load: surface it.
						out.err = err
						return
					}
					if ph.pause > 0 {
						time.Sleep(ph.pause)
					}
				}
			}
		}()
	}
	wg.Wait()
	if stop != nil {
		close(stop)
		res.splits = ctl.Stats().Splits
	}

	var lats []time.Duration
	for i := range outs {
		if outs[i].err != nil {
			return res, outs[i].err
		}
		res.ops += outs[i].ops
		res.violations += outs[i].violations
		res.overloaded += outs[i].overloaded
		lats = append(lats, outs[i].lats...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		res.p99 = lats[len(lats)*99/100]
	}
	d.mu.Lock()
	res.finalK = d.m.K()
	d.mu.Unlock()
	return res, nil
}

// randRectIn draws a query rect of the given edge whose origin falls
// inside within.
func randRectIn(rng *rand.Rand, within geo.Rect, edge float64) geo.Rect {
	w := within.MaxX - within.MinX
	h := within.MaxY - within.MinY
	x := within.MinX + rng.Float64()*w
	y := within.MinY + rng.Float64()*h
	return geo.Rect{MinX: x, MinY: y, MaxX: x + edge, MaxY: y + edge}
}

// AblationAutoscale compares static shard counts against the
// telemetry-driven autoscaler under the spatially-skewed diurnal replay,
// on real localhost TCP. The SLO-violation column is the paper claim: the
// autoscaler, starting from K=1 and splitting through the live-resharding
// path, beats every static K because static partitioning cannot subdivide
// the hot district.
func AblationAutoscale(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	n := o.DatasetSize
	if n > 20000 {
		n = 20000
	}
	rng := rand.New(rand.NewSource(o.Seed))
	data := make([]rtree.Entry, n)
	for i := range data {
		data[i] = rtree.Entry{
			Rect: randRectIn(rng, geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 0.005),
			Ref:  uint64(i),
		}
	}
	loaders := 16
	opsPerLoader := o.Requests * 3
	if opsPerLoader > 3000 {
		opsPerLoader = 3000
	}
	// The SLO sits between the saturated hot-shard round trip (≈ loaders ×
	// per-response wire time ≈ 7-8 ms measured) and the same after the
	// autoscaler has split the hot district across two servers (≈ 3.5 ms),
	// so violations measure exactly the saturation the autoscaler removes.
	const (
		deadline = 5 * time.Millisecond
		slo      = 5 * time.Millisecond
	)

	table := stats.NewTable("mode", "finalK", "splits", "ops", "violations", "viol%", "overloaded", "p99_us")
	addRow := func(mode string, r asResult) {
		table.AddRow(mode,
			fmt.Sprintf("%d", r.finalK),
			fmt.Sprintf("%d", r.splits),
			fmt.Sprintf("%d", r.ops),
			fmt.Sprintf("%d", r.violations),
			fmt.Sprintf("%.2f", 100*float64(r.violations)/float64(max(r.ops, 1))),
			fmt.Sprintf("%d", r.overloaded),
			fmtDur(r.p99))
	}
	for _, k := range []int{1, 2, 4} {
		r, err := runAutoscaleMode(o, data, k, loaders, opsPerLoader, deadline, slo)
		if err != nil {
			return nil, fmt.Errorf("ablation autoscale static K=%d: %w", k, err)
		}
		addRow(fmt.Sprintf("static-%d", k), r)
	}
	r, err := runAutoscaleMode(o, data, 0, loaders, opsPerLoader, deadline, slo)
	if err != nil {
		return nil, fmt.Errorf("ablation autoscale: %w", err)
	}
	addRow("autoscale", r)
	return table, nil
}
