package bench

import (
	"fmt"
	"time"

	"github.com/catfish-db/catfish/internal/cluster"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/stats"
	"github.com/catfish-db/catfish/internal/workload"
)

// fmtKops renders a throughput cell.
func fmtKops(v float64) string { return fmt.Sprintf("%.1f", v) }

// fmtDur renders a latency cell in microseconds.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond))
}

// searchMix builds a search-only workload at the given generator.
func searchMix(q workload.QueryGen) *workload.Mix {
	return workload.NewMix(q, workload.SkewedInserts{Edge: 0.0001}, 0, 1<<32)
}

// Fig2 reproduces the motivation experiment (§I): the TCP/IP 1G server's
// normalized CPU utilization and NIC bandwidth as the client count grows,
// at request scales 0.01 (bandwidth-bound, Fig 2a) and 0.00001 (CPU-bound,
// Fig 2b).
func Fig2(o Options) (*stats.Table, []cluster.Result, error) {
	o = o.withDefaults()
	cache := newCache(o)
	tree, err := cache.uniformTree()
	if err != nil {
		return nil, nil, err
	}
	table := stats.NewTable("scale", "clients", "kops", "serverCPU%", "serverTX_Gbps", "serverRX_Gbps")
	var all []cluster.Result
	// The paper's x-axis is threads per client node; its cluster has 8
	// client nodes, so total concurrent clients reach 8x32 = 256.
	clients := []int{16, 32, 64, 128, 256}
	if o.Quick {
		clients = []int{8, 16}
	}
	for _, scale := range []float64{0.01, 0.00001} {
		for _, n := range clients {
			res, err := cluster.Run(cluster.Config{
				Scheme:            cluster.SchemeTCP1G,
				PrebuiltTree:      tree,
				Workload:          searchMix(workload.UniformScale{Scale: scale}),
				NumClients:        n,
				RequestsPerClient: o.Requests,
				ServerCores:       o.ServerCores,
				Seed:              o.Seed,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("fig2 scale=%g n=%d: %w", scale, n, err)
			}
			all = append(all, res)
			table.AddRow(fmt.Sprintf("%g", scale), fmt.Sprintf("%d", n),
				fmtKops(res.Kops),
				fmt.Sprintf("%.1f", res.ServerCPUUtil*100),
				fmt.Sprintf("%.3f", res.ServerTXGbps),
				fmt.Sprintf("%.3f", res.ServerRXGbps))
		}
	}
	return table, all, nil
}

// Fig7 reproduces the polling- vs event-based fast-messaging comparison
// (§IV-B): average search latency (a) and throughput (b) on InfiniBand as
// the client count grows from 80 to 320, at scales 0.00001 and 0.01.
func Fig7(o Options) (*stats.Table, []cluster.Result, error) {
	o = o.withDefaults()
	cache := newCache(o)
	tree, err := cache.uniformTree()
	if err != nil {
		return nil, nil, err
	}
	table := stats.NewTable("scale", "clients", "polling_lat_us", "event_lat_us", "event_batch_lat_us",
		"polling_kops", "event_kops", "event_batch_kops")
	var all []cluster.Result
	clients := []int{80, 160, 240, 320}
	if o.Quick {
		clients = []int{16, 32}
	}
	// The third column batches B requests per ring write on the event
	// scheme (B=1 would reproduce the unbatched event column exactly).
	variants := []struct {
		scheme cluster.Scheme
		batch  int
	}{
		{cluster.SchemeFastMessaging, 1},
		{cluster.SchemeFastEvent, 1},
		{cluster.SchemeFastEvent, o.BatchSize},
	}
	for _, scale := range []float64{0.00001, 0.01} {
		for _, n := range clients {
			row := []string{fmt.Sprintf("%g", scale), fmt.Sprintf("%d", n)}
			var lats, kops []string
			for _, v := range variants {
				res, err := cluster.Run(cluster.Config{
					Scheme:            v.scheme,
					PrebuiltTree:      tree,
					Workload:          searchMix(workload.UniformScale{Scale: scale}),
					NumClients:        n,
					RequestsPerClient: o.Requests,
					BatchSize:         v.batch,
					ServerCores:       o.ServerCores,
					Seed:              o.Seed,
				})
				if err != nil {
					return nil, nil, fmt.Errorf("fig7 %s n=%d: %w", v.scheme.Name, n, err)
				}
				all = append(all, res)
				lats = append(lats, fmtDur(res.Latency.Mean))
				kops = append(kops, fmtKops(res.Kops))
			}
			row = append(row, lats...)
			row = append(row, kops...)
			table.AddRow(row...)
		}
	}
	return table, all, nil
}

// Fig8 reproduces the multi-issue offloading experiment (§IV-C): one
// client's average offloaded search latency with and without multi-issue,
// at request scales from 0.00001 to 0.01.
func Fig8(o Options) (*stats.Table, []cluster.Result, error) {
	o = o.withDefaults()
	cache := newCache(o)
	tree, err := cache.uniformTree()
	if err != nil {
		return nil, nil, err
	}
	table := stats.NewTable("scale", "single_lat_us", "multi_lat_us", "reduction%")
	var all []cluster.Result
	for _, scale := range []float64{0.00001, 0.0001, 0.001, 0.01} {
		var lat [2]time.Duration
		for i, scheme := range []cluster.Scheme{cluster.SchemeOffloading, cluster.SchemeOffloadMulti} {
			res, err := cluster.Run(cluster.Config{
				Scheme:            scheme,
				PrebuiltTree:      tree,
				Workload:          searchMix(workload.UniformScale{Scale: scale}),
				NumClients:        1,
				RequestsPerClient: o.Requests,
				ServerCores:       o.ServerCores,
				Seed:              o.Seed,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("fig8 %s scale=%g: %w", scheme.Name, scale, err)
			}
			all = append(all, res)
			lat[i] = res.Latency.Mean
		}
		reduction := 100 * (1 - float64(lat[1])/float64(lat[0]))
		table.AddRow(fmt.Sprintf("%g", scale), fmtDur(lat[0]), fmtDur(lat[1]),
			fmt.Sprintf("%.1f", reduction))
	}
	return table, all, nil
}

// Fig9 reproduces the communication micro-benchmark (§V-A): transfer
// latency (a) and throughput (b) for chunk sizes from 2 B to 8 MB over
// TCP-1G, TCP-40G, RDMA Read, and RDMA Write.
func Fig9(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	sizes := []int{2, 64, 2 << 10, 64 << 10, 1 << 20, 8 << 20}
	if o.Quick {
		sizes = []int{2, 2 << 10, 1 << 20}
	}
	iters := 50
	type series struct {
		name   string
		prof   netmodel.Profile
		method cluster.MicroMethod
	}
	all := []series{
		{"tcp-1g", netmodel.Ethernet1G, cluster.MicroTCP},
		{"tcp-40g", netmodel.Ethernet40G, cluster.MicroTCP},
		{"rdma-read", netmodel.InfiniBand100G, cluster.MicroRDMARead},
		{"rdma-write", netmodel.InfiniBand100G, cluster.MicroRDMAWrite},
	}
	table := stats.NewTable("size_bytes", "series", "latency_us", "gbps")
	for _, s := range all {
		pts, err := cluster.RunMicro(s.prof, s.method, sizes, iters, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", s.name, err)
		}
		for _, pt := range pts {
			table.AddRow(fmt.Sprintf("%d", pt.Size), s.name,
				fmtDur(pt.Latency), fmt.Sprintf("%.3f", pt.Gbps))
		}
	}
	return table, nil
}
