package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/catfish-db/catfish/internal/btree"
	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/kv"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/stats"
)

// Framework runs the §VI generality experiment: the same fast-messaging /
// offloading / adaptive triad serving a B+-tree key-value store instead of
// an R-tree, under a saturated-server point-lookup workload. The expected
// shape mirrors Fig 10a: fast messaging plateaus at the server CPU,
// offloading rides the NIC, and the adaptive client beats both.
func Framework(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	keys := o.DatasetSize
	if keys > 500_000 {
		keys = 500_000
	}
	clients := o.ablationClients()
	table := stats.NewTable("kv_mode", "kops", "mean_lat_us", "offload%", "serverCPU%")
	for _, mode := range []string{"fast", "offload", "adaptive"} {
		res, err := runKV(o, keys, clients, mode)
		if err != nil {
			return nil, fmt.Errorf("framework %s: %w", mode, err)
		}
		table.AddRow(mode, fmtKops(res.kops), fmtDur(res.meanLat),
			fmt.Sprintf("%.1f", res.offloadFrac*100),
			fmt.Sprintf("%.1f", res.cpuUtil*100))
	}
	return table, nil
}

type kvResult struct {
	kops        float64
	meanLat     time.Duration
	offloadFrac float64
	cpuUtil     float64
}

func runKV(o Options, keys, clients int, mode string) (kvResult, error) {
	e := sim.New(o.Seed)
	net := fabric.NewNetwork(e, netmodel.InfiniBand100G)
	serverCPU := sim.NewCPU(e, o.ServerCores)
	serverHost := net.NewHost("server", serverCPU)

	perNode := 100
	reg, err := region.New(keys/perNode*4+4096, 4096)
	if err != nil {
		return kvResult{}, err
	}
	tree, err := btree.New(reg, btree.Config{})
	if err != nil {
		return kvResult{}, err
	}
	for k := 0; k < keys; k++ {
		if err := tree.Insert(uint64(k), uint64(k)); err != nil {
			return kvResult{}, err
		}
	}
	srv, err := kv.NewServer(kv.ServerConfig{
		Engine: e, Host: serverHost, Tree: tree,
		Cost:              netmodel.DefaultCostModel(),
		HeartbeatInterval: o.HeartbeatInv,
	})
	if err != nil {
		return kvResult{}, err
	}

	lat := stats.NewHistogram()
	var ops uint64
	var makespan time.Duration
	var runErr error
	wg := sim.NewWaitGroup(e)
	kvClients := make([]*kv.Client, clients)
	for i := range kvClients {
		host := net.NewHost(fmt.Sprintf("c%d", i/32), sim.NewCPU(e, 28))
		ep, err := srv.Connect(host, net, 16)
		if err != nil {
			return kvResult{}, err
		}
		cfg := kv.ClientConfig{
			Engine: e, Host: host, Endpoint: ep,
			Cost:         netmodel.DefaultCostModel(),
			HeartbeatInv: o.HeartbeatInv,
		}
		switch mode {
		case "fast":
			cfg.Forced = kv.MethodFast
		case "offload":
			cfg.Forced = kv.MethodOffload
		default:
			cfg.Adaptive = true
		}
		c, err := kv.NewClient(cfg)
		if err != nil {
			return kvResult{}, err
		}
		kvClients[i] = c
	}
	for i, c := range kvClients {
		i, c := i, c
		wg.Add(1)
		e.Spawn(fmt.Sprintf("kv-driver-%d", i), func(p *sim.Proc) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(i)*977))
			for r := 0; r < o.Requests; r++ {
				start := p.Now()
				k := uint64(rng.Intn(keys))
				if _, _, err := c.Get(p, k); err != nil {
					runErr = err
					return
				}
				lat.Record(p.Now() - start)
				ops++
				if p.Now() > makespan {
					makespan = p.Now()
				}
			}
		})
	}
	e.Spawn("stop", func(p *sim.Proc) { wg.Wait(p); e.Stop() })
	if err := e.Run(); err != nil {
		return kvResult{}, err
	}
	if runErr != nil {
		return kvResult{}, runErr
	}
	var fast, off uint64
	for _, c := range kvClients {
		st := c.Stats()
		fast += st.FastReads
		off += st.OffloadReads
	}
	out := kvResult{
		meanLat: lat.Summarize().Mean,
		cpuUtil: serverCPU.UtilizationTotal(),
	}
	if makespan > 0 {
		out.kops = float64(ops) / makespan.Seconds() / 1e3
	}
	if fast+off > 0 {
		out.offloadFrac = float64(off) / float64(fast+off)
	}
	return out, nil
}
