package bench

import (
	"fmt"

	"github.com/catfish-db/catfish/internal/cluster"
	"github.com/catfish-db/catfish/internal/stats"
	"github.com/catfish-db/catfish/internal/workload"
)

// evalSchemes are the five systems of the paper's §V-B/§V-C figures.
var evalSchemes = []cluster.Scheme{
	cluster.SchemeTCP1G,
	cluster.SchemeTCP40G,
	cluster.SchemeFastMessaging,
	cluster.SchemeOffloading,
	cluster.SchemeCatfish,
}

// evalScales are the three search workloads of Fig 10–13.
type evalScale struct {
	name string
	gen  workload.QueryGen
}

func evalScales() []evalScale {
	return []evalScale{
		{"0.00001", workload.UniformScale{Scale: 0.00001}},
		{"0.01", workload.UniformScale{Scale: 0.01}},
		{"powerlaw", workload.PowerLawScale{Min: 0.00001, Max: 0.01, Exponent: -0.99}},
	}
}

// sweep runs all schemes x client counts for one workload builder, reusing
// tree when the workload is read-only.
func (o Options) sweep(cache *datasetCache, insertFraction float64,
	scales []evalScale) (*stats.Table, *stats.Table, []cluster.Result, error) {
	thr := stats.NewTable("scale", "clients", "tcp-1g", "tcp-40g", "fastmsg", "offload", "catfish")
	lat := stats.NewTable("scale", "clients", "tcp-1g", "tcp-40g", "fastmsg", "offload", "catfish")
	var all []cluster.Result
	for _, sc := range scales {
		for _, n := range o.Clients {
			thrRow := []string{sc.name, fmt.Sprintf("%d", n)}
			latRow := []string{sc.name, fmt.Sprintf("%d", n)}
			for _, scheme := range evalSchemes {
				cfg := cluster.Config{
					Scheme:            scheme,
					Workload:          workload.NewMix(sc.gen, workload.SkewedInserts{Edge: 0.0001}, insertFraction, 1<<33),
					NumClients:        n,
					RequestsPerClient: o.Requests,
					ServerCores:       o.ServerCores,
					HeartbeatInv:      o.HeartbeatInv,
					Seed:              o.Seed,
				}
				if insertFraction == 0 {
					tree, err := cache.uniformTree()
					if err != nil {
						return nil, nil, nil, err
					}
					cfg.PrebuiltTree = tree
				} else {
					cfg.Dataset = cache.uniformData()
					cfg.StagedWrites = true
				}
				res, err := cluster.Run(cfg)
				if err != nil {
					return nil, nil, nil, fmt.Errorf("%s scale=%s n=%d: %w", scheme.Name, sc.name, n, err)
				}
				all = append(all, res)
				thrRow = append(thrRow, fmtKops(res.Kops))
				latRow = append(latRow, fmtDur(res.Latency.Mean))
			}
			thr.AddRow(thrRow...)
			lat.AddRow(latRow...)
		}
	}
	return thr, lat, all, nil
}

// Fig10And11 reproduces the 100%-search evaluation: throughput (Fig 10)
// and average latency (Fig 11) for the five schemes, three request scales,
// and the client-count sweep.
func Fig10And11(o Options) (thr, lat *stats.Table, results []cluster.Result, err error) {
	o = o.withDefaults()
	return o.sweep(newCache(o), 0, evalScales())
}

// Fig12And13 reproduces the hybrid evaluation (90% search + 10% skewed
// inserts): throughput (Fig 12) and latency (Fig 13).
func Fig12And13(o Options) (thr, lat *stats.Table, results []cluster.Result, err error) {
	o = o.withDefaults()
	return o.sweep(newCache(o), 0.1, evalScales())
}

// Fig14 reproduces the rea02 real-dataset evaluation (§V-C): throughput
// (a) and latency (b) for the five schemes against the rea02-structured
// dataset with ~100-result queries.
func Fig14(o Options) (thr, lat *stats.Table, results []cluster.Result, err error) {
	o = o.withDefaults()
	cache := newCache(o)
	tree, err := cache.rea02Tree()
	if err != nil {
		return nil, nil, nil, err
	}
	queries := workload.NewRea02Queries(len(cache.rea02Data()))
	thr = stats.NewTable("clients", "tcp-1g", "tcp-40g", "fastmsg", "offload", "catfish")
	lat = stats.NewTable("clients", "tcp-1g", "tcp-40g", "fastmsg", "offload", "catfish")
	for _, n := range o.Clients {
		thrRow := []string{fmt.Sprintf("%d", n)}
		latRow := []string{fmt.Sprintf("%d", n)}
		for _, scheme := range evalSchemes {
			res, err := cluster.Run(cluster.Config{
				Scheme:            scheme,
				PrebuiltTree:      tree,
				Workload:          workload.NewMix(queries, workload.SkewedInserts{Edge: 0.0001}, 0, 1<<33),
				NumClients:        n,
				RequestsPerClient: o.Requests,
				ServerCores:       o.ServerCores,
				HeartbeatInv:      o.HeartbeatInv,
				Seed:              o.Seed,
			})
			if err != nil {
				return nil, nil, nil, fmt.Errorf("fig14 %s n=%d: %w", scheme.Name, n, err)
			}
			results = append(results, res)
			thrRow = append(thrRow, fmtKops(res.Kops))
			latRow = append(latRow, fmtDur(res.Latency.Mean))
		}
		thr.AddRow(thrRow...)
		lat.AddRow(latRow...)
	}
	return thr, lat, results, nil
}

// ReadsPerSearch summarizes the offloaded read amplification of a result
// set grouped by (scale, clients) cells in submission order — one column
// per scheme, "-" where the scheme never offloaded. With the node cache
// enabled this is where its read reduction shows up in every figure sweep.
func ReadsPerSearch(results []cluster.Result) *stats.Table {
	n := len(evalSchemes)
	cols := []string{"clients"}
	for _, s := range evalSchemes {
		cols = append(cols, s.Name)
	}
	table := stats.NewTable(cols...)
	for i := 0; i+n <= len(results); i += n {
		cell := results[i : i+n]
		row := []string{fmt.Sprintf("%d", cell[0].Clients)}
		for _, r := range cell {
			if r.OffloadReadsPerSearch > 0 {
				row = append(row, fmt.Sprintf("%.2f", r.OffloadReadsPerSearch))
			} else {
				row = append(row, "-")
			}
		}
		table.AddRow(row...)
	}
	return table
}

// Speedups summarizes Catfish's gains over each baseline across a result
// set grouped by (scale, clients) — the paper's "up to N×" headline
// numbers, derived from the Fig 10/11 sweeps.
func Speedups(results []cluster.Result) *stats.Table {
	table := stats.NewTable("baseline", "max_throughput_gain", "max_latency_reduction")
	// Group runs into cells of len(evalSchemes) in submission order.
	n := len(evalSchemes)
	best := map[string][2]float64{}
	for i := 0; i+n <= len(results); i += n {
		cell := results[i : i+n]
		var catfish cluster.Result
		for _, r := range cell {
			if r.Scheme == "catfish" {
				catfish = r
			}
		}
		if catfish.Scheme == "" {
			continue
		}
		for _, r := range cell {
			if r.Scheme == "catfish" || r.Kops <= 0 || catfish.Latency.Mean <= 0 {
				continue
			}
			g := best[r.Scheme]
			if v := catfish.Kops / r.Kops; v > g[0] {
				g[0] = v
			}
			if v := float64(r.Latency.Mean) / float64(catfish.Latency.Mean); v > g[1] {
				g[1] = v
			}
			best[r.Scheme] = g
		}
	}
	for _, name := range []string{"tcp-1g", "tcp-40g", "fastmsg", "offload"} {
		g, ok := best[name]
		if !ok {
			continue
		}
		table.AddRow(name, fmt.Sprintf("%.2fx", g[0]), fmt.Sprintf("%.2fx", g[1]))
	}
	return table
}
