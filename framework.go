package catfish

import (
	"github.com/catfish-db/catfish/internal/btree"
	"github.com/catfish-db/catfish/internal/cuckoo"
	"github.com/catfish-db/catfish/internal/kv"
	"github.com/catfish-db/catfish/internal/rtree"
)

// The paper's §VI frames Catfish as a framework for link-based data
// structures beyond R-trees; these exports provide two more structures over
// the same region/version machinery — a B+-tree and a cuckoo hash table —
// each with a transport-agnostic remote Reader for one-sided lookups.
type (
	// BTree is a B+-tree stored node-per-chunk in a Region.
	BTree = btree.Tree
	// BTreeConfig tunes a BTree.
	BTreeConfig = btree.Config
	// BTreeReader performs one-sided remote B+-tree lookups and scans.
	BTreeReader = btree.Reader
	// CuckooTable is a two-choice cuckoo hash table over a Region.
	CuckooTable = cuckoo.Table
	// CuckooConfig tunes a CuckooTable.
	CuckooConfig = cuckoo.Config
	// CuckooReader performs one-sided remote cuckoo lookups.
	CuckooReader = cuckoo.Reader
	// Neighbor is one R-tree nearest-neighbor result.
	Neighbor = rtree.Neighbor
)

// NewBTree creates an empty B+-tree whose nodes live in reg.
func NewBTree(reg *Region, cfg BTreeConfig) (*BTree, error) {
	return btree.New(reg, cfg)
}

// NewCuckooTable creates a cuckoo table using every chunk of reg as one
// bucket (use small chunks, e.g. 256 B, for cheap one-sided lookups).
func NewCuckooTable(reg *Region, cfg CuckooConfig) (*CuckooTable, error) {
	return cuckoo.New(reg, cfg)
}

// The full adaptive stack over a B+-tree: a key-value service with fast
// messaging, one-sided offloading, and the Algorithm 1 switch — the §VI
// framework demonstrated end to end (see bench.Framework).
type (
	// KVServer serves a B+-tree key-value store over the simulated fabric.
	KVServer = kv.Server
	// KVServerConfig configures a KVServer.
	KVServerConfig = kv.ServerConfig
	// KVClient is an adaptive key-value client.
	KVClient = kv.Client
	// KVClientConfig configures a KVClient.
	KVClientConfig = kv.ClientConfig
	// KVEndpoint is the client's connection handle.
	KVEndpoint = kv.Endpoint
)

// NewKVServer creates a key-value server over a B+-tree.
func NewKVServer(cfg KVServerConfig) (*KVServer, error) { return kv.NewServer(cfg) }

// NewKVClient creates an adaptive key-value client.
func NewKVClient(cfg KVClientConfig) (*KVClient, error) { return kv.NewClient(cfg) }
