package catfish

import (
	"github.com/catfish-db/catfish/internal/rpcnet"
)

// Real-network (stdlib net) types: the same Catfish protocol served over
// actual TCP sockets, with one-sided reads emulated by READ_CHUNK requests
// answered lock-free from the region (version checks still protect
// readers). See examples/realnet and cmd/catfish-server / catfish-client.
type (
	// NetServer serves a Catfish R-tree over real TCP.
	NetServer = rpcnet.Server
	// NetServerConfig configures a NetServer.
	NetServerConfig = rpcnet.ServerConfig
	// NetClient is a Catfish client over real TCP.
	NetClient = rpcnet.Client
	// NetClientConfig configures a NetClient.
	NetClientConfig = rpcnet.ClientConfig
	// NetReplicaConfig arms shard replication on a NetServer
	// (NetServerConfig.Replica).
	NetReplicaConfig = rpcnet.ReplicaConfig
	// NetMethod identifies the search path used by a NetClient.
	NetMethod = rpcnet.Method
)

// Real-network search methods.
const (
	// NetMethodFast sends the search to the server.
	NetMethodFast = rpcnet.MethodFast
	// NetMethodOffload traverses the tree with emulated one-sided reads.
	NetMethodOffload = rpcnet.MethodOffload
)

// Listen binds addr and returns a real-network server for tree; call
// Serve to accept connections.
func Listen(addr string, tree *Tree, cfg NetServerConfig) (*NetServer, error) {
	return rpcnet.Listen(addr, tree, cfg)
}

// Dial connects a real-network client to a Catfish server.
func Dial(addr string, cfg NetClientConfig) (*NetClient, error) {
	return rpcnet.Dial(addr, cfg)
}
