package catfish

import (
	"github.com/catfish-db/catfish/internal/rpcnet"
)

// Real-network (stdlib net) types: the same Catfish protocol served over
// actual TCP sockets, with one-sided reads emulated by READ_CHUNK requests
// answered lock-free from the region (version checks still protect
// readers). See examples/realnet and cmd/catfish-server / catfish-client.
type (
	// NetServer serves a Catfish R-tree over real TCP.
	NetServer = rpcnet.Server
	// NetServerConfig configures a NetServer.
	NetServerConfig = rpcnet.ServerConfig
	// NetClient is a Catfish client over real TCP.
	NetClient = rpcnet.Client
	// NetClientConfig configures a NetClient.
	NetClientConfig = rpcnet.ClientConfig
	// NetReplicaConfig arms shard replication on a NetServer
	// (NetServerConfig.Replica).
	NetReplicaConfig = rpcnet.ReplicaConfig
	// NetMethod identifies the search path used by a NetClient.
	NetMethod = rpcnet.Method
)

// Real-network search methods.
const (
	// NetMethodFast sends the search to the server.
	NetMethodFast = rpcnet.MethodFast
	// NetMethodOffload traverses the tree with emulated one-sided reads.
	NetMethodOffload = rpcnet.MethodOffload
)

// Unified connection API: Connect resolves one or many addresses — plus
// functional options for tuning, replication, and connection sharing —
// into a Conn, the method set shared by the direct client and the
// scatter-gather router.
type (
	// Conn is the unified client-side handle returned by Connect.
	Conn = rpcnet.Conn
	// Option tunes Connect (see the With* constructors).
	Option = rpcnet.Option
	// MuxPool shares a bounded set of multiplexed TCP connections among
	// many logical clients (WithMuxPool).
	MuxPool = rpcnet.MuxPool
)

// Connect options, re-exported from internal/rpcnet.
var (
	WithClientConfig    = rpcnet.WithClientConfig
	WithAdaptive        = rpcnet.WithAdaptive
	WithForced          = rpcnet.WithForced
	WithFetch           = rpcnet.WithFetch
	WithNodeCache       = rpcnet.WithNodeCache
	WithMergeSpan       = rpcnet.WithMergeSpan
	WithPrefetch        = rpcnet.WithPrefetch
	WithMetrics         = rpcnet.WithMetrics
	WithTrace           = rpcnet.WithTrace
	WithSeed            = rpcnet.WithSeed
	WithDeadline        = rpcnet.WithDeadline
	WithBackups         = rpcnet.WithBackups
	WithHealthMultiple  = rpcnet.WithHealthMultiple
	WithReadReplicaUtil = rpcnet.WithReadReplicaUtil
	WithMuxPool         = rpcnet.WithMuxPool
)

// Connect is the unified entry point to a Catfish deployment over real
// sockets: one address yields a direct client, several (or any
// router-only option) a scatter-gather router, and WithMuxPool
// multiplexes either shape over shared connections.
func Connect(addrs []string, opts ...Option) (Conn, error) {
	return rpcnet.Connect(addrs, opts...)
}

// NewMuxPool builds a connection pool capped at maxPerAddr multiplexed
// connections per server address, for WithMuxPool.
func NewMuxPool(maxPerAddr int) *MuxPool {
	return rpcnet.NewMuxPool(maxPerAddr, rpcnet.MuxConfig{})
}

// Listen binds addr and returns a real-network server for tree; call
// Serve to accept connections.
func Listen(addr string, tree *Tree, cfg NetServerConfig) (*NetServer, error) {
	return rpcnet.Listen(addr, tree, cfg)
}

// Dial connects a real-network client to a Catfish server.
//
// Deprecated: use Connect, which unifies single-server and routed
// construction behind functional options.
func Dial(addr string, cfg NetClientConfig) (*NetClient, error) {
	return rpcnet.Dial(addr, cfg)
}
