// Geonearby: the paper's Fig 1 scenario — web front-ends answering
// "restaurants near me" against a back-end Catfish server. A city's points
// of interest are indexed in the server's R*-tree; front-end hosts run a
// fleet of adaptive clients issuing small nearby-window queries plus a
// trickle of new-business inserts. The run reports how the fleet's searches
// split between fast messaging and offloading as the server heats up.
package main

import (
	"fmt"
	"log"
	"math/rand"

	catfish "github.com/catfish-db/catfish"
)

const (
	pois            = 200_000
	frontEnds       = 4  // web servers (client hosts)
	usersPerFront   = 16 // concurrent user sessions per front-end
	queriesPerUser  = 300
	nearbyWindow    = 0.002 // ~200 m in unit-square city coordinates
	newBusinessRate = 0.02  // fraction of requests that add a POI
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	engine := catfish.NewEngine(2026)
	net := catfish.NewNetwork(engine, catfish.InfiniBand100G)

	// Back-end: one server machine owns the POI index.
	serverHost := net.NewHost("backend", catfish.NewCPU(engine, 8))
	reg, err := catfish.NewMemoryRegion(1<<15, 4096)
	if err != nil {
		return err
	}
	tree, err := catfish.NewTree(reg, catfish.TreeConfig{})
	if err != nil {
		return err
	}
	if err := tree.BulkLoad(cityPOIs(pois), 0); err != nil {
		return err
	}
	srv, err := catfish.NewServer(catfish.ServerConfig{
		Engine:            engine,
		Host:              serverHost,
		Tree:              tree,
		Cost:              catfish.DefaultCostModel(),
		Mode:              catfish.ModeEvent,
		HeartbeatInterval: catfish.DefaultHeartbeatInterval,
		StagedNodeWrites:  true,
	})
	if err != nil {
		return err
	}

	// Front-ends: each web server hosts many user sessions, each session
	// an adaptive Catfish client.
	var clients []*catfish.Client
	for f := 0; f < frontEnds; f++ {
		host := net.NewHost(fmt.Sprintf("frontend-%d", f), catfish.NewCPU(engine, 28))
		for u := 0; u < usersPerFront; u++ {
			ep, err := srv.Connect(host, net, 16)
			if err != nil {
				return err
			}
			c, err := catfish.NewClient(catfish.ClientConfig{
				Engine: engine, Host: host, Endpoint: ep,
				Cost:     catfish.DefaultCostModel(),
				Adaptive: true, MultiIssue: true,
			})
			if err != nil {
				return err
			}
			clients = append(clients, c)
		}
	}

	wg := catfish.NewWaitGroup(engine)
	var hits, searches, inserts int
	var runErr error
	for i, c := range clients {
		i, c := i, c
		wg.Add(1)
		engine.Spawn(fmt.Sprintf("user-%d", i), func(p *catfish.Proc) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			for q := 0; q < queriesPerUser; q++ {
				if rng.Float64() < newBusinessRate {
					x, y := rng.Float64(), rng.Float64()
					r := catfish.NewRect(x, y, x+1e-5, y+1e-5)
					if err := c.Insert(p, r, uint64(1_000_000+i*queriesPerUser+q)); err != nil {
						runErr = err
						return
					}
					inserts++
					continue
				}
				// "Near me": a small window around the user's position.
				x, y := rng.Float64(), rng.Float64()
				window := catfish.NewRect(x, y, min1(x+nearbyWindow), min1(y+nearbyWindow))
				found, _, err := c.Search(p, window)
				if err != nil {
					runErr = err
					return
				}
				hits += len(found)
				searches++
			}
		})
	}
	// A concierge session asks for "the 5 closest restaurants" over the
	// wire once the rush is over — the server runs the R-tree's best-first
	// kNN and replies with the neighbors in distance order.
	var remoteNearest []catfish.Neighbor
	engine.Spawn("coordinator", func(p *catfish.Proc) {
		wg.Wait(p)
		var err error
		if remoteNearest, _, err = clients[0].Nearest(p, 5, 0.5, 0.5); err != nil {
			runErr = err
		}
		engine.Stop()
	})
	if err := engine.Run(); err != nil {
		return err
	}
	if runErr != nil {
		return runErr
	}

	var fast, off, torn uint64
	for _, c := range clients {
		st := c.Stats()
		fast += st.FastSearches
		off += st.OffloadSearches
		torn += st.TornRetries
	}
	fmt.Printf("users: %d across %d front-ends\n", len(clients), frontEnds)
	fmt.Printf("searches: %d (avg %.1f POIs each), inserts: %d\n",
		searches, float64(hits)/float64(searches), inserts)
	fmt.Printf("served via fast messaging: %d, offloaded to clients: %d (%.0f%%)\n",
		fast, off, 100*float64(off)/float64(fast+off))
	fmt.Printf("torn-read retries absorbed by version checks: %d\n", torn)
	fmt.Printf("virtual duration: %v; server searches executed: %d\n",
		engine.Now(), srv.Stats().Searches)

	// The remote answer must match a local best-first traversal exactly.
	local, _, err := tree.Nearest(5, 0.5, 0.5)
	if err != nil {
		return err
	}
	fmt.Printf("5 POIs nearest to the city center (remote kNN):")
	for i, n := range remoteNearest {
		fmt.Printf(" #%d", n.Ref)
		if n != local[i] {
			return fmt.Errorf("remote kNN diverged from local traversal at rank %d", i)
		}
	}
	fmt.Println()
	return nil
}

// cityPOIs clusters points of interest like a real city: a dense core and
// sparser suburbs.
func cityPOIs(n int) []catfish.Entry {
	rng := rand.New(rand.NewSource(11))
	out := make([]catfish.Entry, n)
	for i := range out {
		var x, y float64
		if rng.Float64() < 0.6 { // downtown core
			x = 0.5 + rng.NormFloat64()*0.08
			y = 0.5 + rng.NormFloat64()*0.08
		} else {
			x, y = rng.Float64(), rng.Float64()
		}
		x, y = clamp01(x), clamp01(y)
		out[i] = catfish.Entry{
			Rect: catfish.NewRect(x, y, min1(x+2e-5), min1(y+2e-5)),
			Ref:  uint64(i),
		}
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func min1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}
