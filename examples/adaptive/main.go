// Adaptive: a scaled-down rerun of the paper's headline evaluation
// (Fig 10/11). Five schemes — kernel TCP on 1G and 40G Ethernet, the
// FaRM-style fast-messaging and offloading baselines, and Catfish — serve
// the same closed-loop search workload, once in the CPU-bound regime
// (request scale 0.00001) and once in the bandwidth-bound regime (0.01).
//
// Expected shape (matches the paper): fast messaging plateaus when server
// CPU saturates, offloading plateaus when the server NIC saturates, and
// Catfish beats both by splitting the load adaptively.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	catfish "github.com/catfish-db/catfish"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		datasetSize = 500_000
		clients     = 64
		requests    = 500
	)
	fmt.Printf("dataset: %d uniform rectangles; %d clients x %d searches each\n\n",
		datasetSize, clients, requests)
	dataset := catfish.UniformRects(datasetSize, 0.0001, 1)

	schemes := []catfish.Scheme{
		catfish.SchemeTCP1G,
		catfish.SchemeTCP40G,
		catfish.SchemeFastMessaging,
		catfish.SchemeOffloading,
		catfish.SchemeCatfish,
	}

	for _, scale := range []float64{0.00001, 0.01} {
		regime := "CPU-bound (small scope)"
		if scale == 0.01 {
			regime = "bandwidth-bound (large scope)"
		}
		fmt.Printf("--- request scale %g: %s ---\n", scale, regime)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "scheme\tKops\tmean lat\tp99 lat\tserver CPU\tserver TX\toffloaded")
		for _, s := range schemes {
			res, err := catfish.RunExperiment(catfish.ExperimentConfig{
				Scheme:            s,
				Dataset:           dataset,
				Workload:          catfish.NewMix(catfish.UniformScale{Scale: scale}, catfish.SkewedInserts{Edge: 0.0001}, 0, 1<<32),
				NumClients:        clients,
				RequestsPerClient: requests,
				Seed:              7,
			})
			if err != nil {
				return fmt.Errorf("%s: %w", s.Name, err)
			}
			fmt.Fprintf(w, "%s\t%.1f\t%v\t%v\t%.0f%%\t%.1f Gbps\t%.0f%%\n",
				res.Scheme, res.Kops, res.Latency.Mean, res.Latency.P99,
				res.ServerCPUUtil*100, res.ServerTXGbps, res.OffloadFraction*100)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
