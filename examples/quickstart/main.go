// Quickstart: build an R*-tree in a registered memory region, query it
// locally, then stand up a one-server/one-client simulated Catfish cluster
// and run the same queries remotely over RDMA fast messaging and one-sided
// offloading.
package main

import (
	"fmt"
	"log"

	catfish "github.com/catfish-db/catfish"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Local index ----------------------------------------------------
	// A region of 4096 chunks x 4 KB holds ~250k rectangles at the default
	// fan-out of 64.
	reg, err := catfish.NewMemoryRegion(4096, 4096)
	if err != nil {
		return err
	}
	tree, err := catfish.NewTree(reg, catfish.TreeConfig{})
	if err != nil {
		return err
	}

	// Index 100k rectangles: the paper's uniform dataset, scaled down.
	items := catfish.UniformRects(100_000, 0.0001, 42)
	if err := tree.BulkLoad(items, 0); err != nil {
		return err
	}
	fmt.Printf("tree: %d items, height %d, root chunk %d\n",
		tree.Len(), tree.Height(), tree.RootChunk())

	// A range query, paper-style: all rectangles overlapping a window.
	window := catfish.NewRect(0.25, 0.25, 0.26, 0.26)
	found, st, err := tree.SearchCollect(window)
	if err != nil {
		return err
	}
	fmt.Printf("local search %v: %d hits, %d nodes visited\n",
		window, len(found), st.NodesRead)

	// Inserts and deletes use the R*-tree algorithms (forced reinsertion,
	// margin-driven splits).
	if _, err := tree.Insert(catfish.NewRect(0.251, 0.251, 0.252, 0.252), 999_999); err != nil {
		return err
	}
	ok, _, err := tree.Delete(catfish.NewRect(0.251, 0.251, 0.252, 0.252), 999_999)
	if err != nil || !ok {
		return fmt.Errorf("delete round trip failed: %v %v", ok, err)
	}

	// --- Remote access over the simulated RDMA fabric --------------------
	engine := catfish.NewEngine(1)
	net := catfish.NewNetwork(engine, catfish.InfiniBand100G)
	serverHost := net.NewHost("server", catfish.NewCPU(engine, 28))
	clientHost := net.NewHost("client", catfish.NewCPU(engine, 8))

	srv, err := catfish.NewServer(catfish.ServerConfig{
		Engine:            engine,
		Host:              serverHost,
		Tree:              tree,
		Cost:              catfish.DefaultCostModel(),
		Mode:              catfish.ModeEvent,
		HeartbeatInterval: catfish.DefaultHeartbeatInterval,
	})
	if err != nil {
		return err
	}
	ep, err := srv.Connect(clientHost, net, 16)
	if err != nil {
		return err
	}
	cli, err := catfish.NewClient(catfish.ClientConfig{
		Engine:   engine,
		Host:     clientHost,
		Endpoint: ep,
		Cost:     catfish.DefaultCostModel(),
		Adaptive: true, MultiIssue: true,
	})
	if err != nil {
		return err
	}

	var runErr error
	engine.Spawn("demo-client", func(p *catfish.Proc) {
		defer engine.Stop()
		// Fast messaging: the server executes the search.
		items, method, err := cli.Search(p, window)
		if err != nil {
			runErr = err
			return
		}
		fmt.Printf("remote search via %-7s: %d hits at t=%v\n", method, len(items), p.Now())

		// Force one offloaded search: the client walks the tree itself
		// with one-sided RDMA reads and multi-issue pipelining.
		off, err := catfish.NewClient(catfish.ClientConfig{
			Engine: engine, Host: clientHost, Endpoint: ep,
			Cost:   catfish.DefaultCostModel(),
			Forced: catfish.MethodOffload, MultiIssue: true,
		})
		if err != nil {
			runErr = err
			return
		}
		items, method, err = off.Search(p, window)
		if err != nil {
			runErr = err
			return
		}
		fmt.Printf("remote search via %-7s: %d hits at t=%v (%d nodes fetched)\n",
			method, len(items), p.Now(), off.Stats().NodesFetched)
	})
	if err := engine.Run(); err != nil {
		return err
	}
	return runErr
}
