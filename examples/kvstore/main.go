// Kvstore: the paper's §VI framework claim in action — the same
// region/version/offload machinery that serves the R-tree also serves a
// B+-tree and a cuckoo hash table. A server owns both structures in
// registered memory; a client performs one-sided lookups over the simulated
// RDMA fabric (point gets against the hash table, ordered scans against the
// B+-tree) while the server keeps writing, with cacheline version checks
// absorbing every torn read.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	catfish "github.com/catfish-db/catfish"
	"github.com/catfish-db/catfish/internal/btree"
	"github.com/catfish-db/catfish/internal/cuckoo"
)

const keys = 50_000

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	engine := catfish.NewEngine(7)
	net := catfish.NewNetwork(engine, catfish.InfiniBand100G)
	serverHost := net.NewHost("server", catfish.NewCPU(engine, 8))
	clientHost := net.NewHost("client", catfish.NewCPU(engine, 4))

	// B+-tree region: 4 KB chunks, ~220 keys per node.
	btReg, err := catfish.NewMemoryRegion(4096, 4096)
	if err != nil {
		return err
	}
	bt, err := catfish.NewBTree(btReg, catfish.BTreeConfig{})
	if err != nil {
		return err
	}
	// Cuckoo region: 256 B chunks = one 14-slot bucket each.
	ckReg, err := catfish.NewMemoryRegion(8192, 256)
	if err != nil {
		return err
	}
	ck, err := catfish.NewCuckooTable(ckReg, catfish.CuckooConfig{Seed: 9})
	if err != nil {
		return err
	}
	for k := uint64(0); k < keys; k++ {
		if err := bt.Insert(k, k*2); err != nil {
			return err
		}
		if err := ck.Put(k, k*2); err != nil {
			return err
		}
	}
	fmt.Printf("server: B+-tree %d keys (height %d), cuckoo %d keys (load %.0f%%)\n",
		bt.Len(), bt.Height(), ck.Len(), ck.LoadFactor()*100)

	// Register both regions; the client reads them one-sided.
	btMem := serverHost.RegisterRegion(btReg)
	ckMem := serverHost.RegisterRegion(ckReg)
	btQP, _ := net.ConnectQP(clientHost, serverHost, 8)
	ckQP, _ := net.ConnectQP(clientHost, serverHost, 8)

	var runErr error
	engine.Spawn("server-writer", func(p *catfish.Proc) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 2000; i++ {
			k := uint64(rng.Intn(keys))
			if err := bt.Update(k, k*3); err != nil {
				runErr = err
				return
			}
			if err := ck.Update(k, k*3); err != nil {
				runErr = err
				return
			}
			p.Sleep(500 * time.Nanosecond)
		}
	})
	engine.Spawn("client", func(p *catfish.Proc) {
		defer engine.Stop()
		btReader := &catfish.BTreeReader{
			Fetch: func(id int) ([]byte, error) {
				return btQP.ReadSync(p, btMem, id*btReg.ChunkSize(), btReg.ChunkSize())
			},
			RootChunk:  bt.RootChunk(),
			MaxEntries: bt.MaxEntries(),
		}
		ckReader := &catfish.CuckooReader{
			Fetch: func(id int) ([]byte, error) {
				return ckQP.ReadSync(p, ckMem, id*ckReg.ChunkSize(), ckReg.ChunkSize())
			},
			Buckets:     ck.Buckets(),
			Slots:       ck.SlotsPerBucket(),
			Seed:        9,
			BucketChunk: ck.BucketChunk,
		}
		rng := rand.New(rand.NewSource(2))
		start := p.Now()
		const gets = 2000
		for i := 0; i < gets; i++ {
			k := uint64(rng.Intn(keys))
			v, err := ckReader.Get(k)
			if err != nil {
				runErr = fmt.Errorf("cuckoo get %d: %w", k, err)
				return
			}
			if v != k*2 && v != k*3 {
				runErr = fmt.Errorf("cuckoo get %d = %d, want %d or %d", k, v, k*2, k*3)
				return
			}
		}
		hashDur := p.Now() - start
		start = p.Now()
		scanned := 0
		if err := btReader.Range(1000, 1500, func(k, v uint64) bool {
			if v != k*2 && v != k*3 {
				runErr = fmt.Errorf("btree scan %d = %d", k, v)
				return false
			}
			scanned++
			return true
		}); err != nil && runErr == nil {
			runErr = err
		}
		scanDur := p.Now() - start
		fmt.Printf("client: %d one-sided hash gets in %v (%.1fµs avg, %d torn retries)\n",
			gets, hashDur, float64(hashDur.Microseconds())/gets, ckReader.TornRetries)
		fmt.Printf("client: ordered scan of %d keys via B+-tree leaf chain in %v (%d torn retries)\n",
			scanned, scanDur, btReader.TornRetries)
	})
	if err := engine.Run(); err != nil {
		return err
	}
	if runErr != nil {
		return runErr
	}
	// Sanity: structures still intact after the concurrent writes.
	if err := bt.CheckInvariants(); err != nil {
		return err
	}
	if _, err := ck.Get(keys - 1); err != nil && !errors.Is(err, cuckoo.ErrNotFound) {
		return err
	}
	_ = btree.ErrNotFound

	// --- The full adaptive stack over the B+-tree ------------------------
	// The same Algorithm 1 switch that drives the R-tree drives a KV
	// service: reads flip to one-sided traversal when the server saturates.
	return adaptiveKVDemo()
}

func adaptiveKVDemo() error {
	engine := catfish.NewEngine(8)
	net := catfish.NewNetwork(engine, catfish.InfiniBand100G)
	serverHost := net.NewHost("kv-server", catfish.NewCPU(engine, 2))
	reg, err := catfish.NewMemoryRegion(4096, 4096)
	if err != nil {
		return err
	}
	tree, err := catfish.NewBTree(reg, catfish.BTreeConfig{})
	if err != nil {
		return err
	}
	for k := uint64(0); k < keys; k++ {
		if err := tree.Insert(k, k); err != nil {
			return err
		}
	}
	srv, err := catfish.NewKVServer(catfish.KVServerConfig{
		Engine: engine, Host: serverHost, Tree: tree,
		Cost:              catfish.DefaultCostModel(),
		HeartbeatInterval: time.Millisecond,
	})
	if err != nil {
		return err
	}
	var clients []*catfish.KVClient
	for i := 0; i < 8; i++ {
		host := net.NewHost(fmt.Sprintf("kv-client-%d", i), catfish.NewCPU(engine, 8))
		ep, err := srv.Connect(host, net, 16)
		if err != nil {
			return err
		}
		c, err := catfish.NewKVClient(catfish.KVClientConfig{
			Engine: engine, Host: host, Endpoint: ep,
			Cost:     catfish.DefaultCostModel(),
			Adaptive: true, HeartbeatInv: time.Millisecond,
		})
		if err != nil {
			return err
		}
		clients = append(clients, c)
	}
	wg := catfish.NewWaitGroup(engine)
	var kvErr error
	for i, c := range clients {
		i, c := i, c
		wg.Add(1)
		engine.Spawn(fmt.Sprintf("kv-user-%d", i), func(p *catfish.Proc) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for q := 0; q < 500; q++ {
				k := uint64(rng.Intn(keys))
				v, _, err := c.Get(p, k)
				if err != nil || v != k {
					kvErr = fmt.Errorf("kv get %d = %d, %v", k, v, err)
					return
				}
			}
		})
	}
	engine.Spawn("kv-stop", func(p *catfish.Proc) { wg.Wait(p); engine.Stop() })
	if err := engine.Run(); err != nil {
		return err
	}
	if kvErr != nil {
		return kvErr
	}
	var fast, off uint64
	for _, c := range clients {
		st := c.Stats()
		fast += st.FastReads
		off += st.OffloadReads
	}
	fmt.Printf("adaptive KV: %d gets via fast messaging, %d offloaded (%.0f%%) on a saturated 2-core server\n",
		fast, off, 100*float64(off)/float64(fast+off))
	return nil
}
