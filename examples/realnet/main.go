// Realnet: Catfish over actual TCP sockets in one process — a server
// goroutine serves a 100k-rectangle tree on localhost while client
// goroutines query it by fast messaging and by emulated one-sided reads,
// with a writer racing them to exercise the version-check retry path under
// real concurrency.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	catfish "github.com/catfish-db/catfish"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg, err := catfish.NewMemoryRegion(1<<14, 4096)
	if err != nil {
		return err
	}
	tree, err := catfish.NewTree(reg, catfish.TreeConfig{})
	if err != nil {
		return err
	}
	if err := tree.BulkLoad(catfish.UniformRects(100_000, 0.0001, 1), 0); err != nil {
		return err
	}

	srv, err := catfish.Listen("127.0.0.1:0", tree, catfish.NetServerConfig{
		HeartbeatInterval: 10 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	go srv.Serve() //nolint:errcheck // returns on Close
	fmt.Println("serving", tree.Len(), "rectangles on", srv.Addr())

	// A writer keeps inserting while readers traverse.
	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		w, err := catfish.Connect([]string{srv.Addr().String()})
		if err != nil {
			log.Println("writer:", err)
			return
		}
		defer w.Close()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			x, y := rng.Float64(), rng.Float64()
			r := catfish.NewRect(x, y, min1(x+1e-5), min1(y+1e-5))
			if err := w.Insert(r, uint64(1_000_000+i)); err != nil {
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for _, mode := range []struct {
		name string
		opts []catfish.Option
	}{
		{"fast", []catfish.Option{catfish.WithForced(catfish.NetMethodFast)}},
		{"offload", []catfish.Option{catfish.WithClientConfig(
			catfish.NetClientConfig{Forced: catfish.NetMethodOffload, MultiIssue: true})}},
	} {
		mode := mode
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := catfish.Connect([]string{srv.Addr().String()}, mode.opts...)
			if err != nil {
				log.Println(mode.name, err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(7))
			start := time.Now()
			const n = 1500
			hits := 0
			for i := 0; i < n; i++ {
				x, y := rng.Float64()*0.99, rng.Float64()*0.99
				items, _, err := c.Search(catfish.NewRect(x, y, x+0.01, y+0.01))
				if err != nil {
					log.Println(mode.name, err)
					return
				}
				hits += len(items)
			}
			st := c.Snapshot()
			fmt.Printf("%-8s %d searches in %v (avg %.1f hits, %d chunk reads, %d torn retries)\n",
				mode.name, n, time.Since(start).Round(time.Millisecond),
				float64(hits)/n, st.NodesFetched, st.TornRetries)
		}()
	}
	wg.Wait()
	close(stop)
	writerWG.Wait()

	// Remote kNN: best-first traversal cannot offload (every heap pop
	// depends on the previous ones), so Nearest always executes
	// server-side and replies with the neighbors in distance order.
	kc, err := catfish.Connect([]string{srv.Addr().String()})
	if err != nil {
		return err
	}
	defer kc.Close()
	nearest, _, err := kc.Nearest(5, 0.5, 0.5)
	if err != nil {
		return err
	}
	fmt.Printf("5 rectangles nearest to the center:")
	for _, n := range nearest {
		fmt.Printf(" #%d", n.Ref)
	}
	fmt.Println()

	fmt.Printf("server totals: %+v\n", srv.Stats())
	return nil
}

func min1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}
