// Command catfish-client drives load against a catfish-server over real
// TCP, reporting throughput and latency percentiles:
//
//	catfish-client -addr 127.0.0.1:7373 -clients 8 -requests 10000
//	catfish-client -addr ... -method offload -multiissue
//	catfish-client -addr ... -adaptive -insert-fraction 0.1
//
// A comma-separated -addr list drives a sharded deployment through the
// scatter-gather router (addresses in shard order):
//
//	catfish-client -addr host0:7373,host1:7373,host2:7373,host3:7373
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	catfish "github.com/catfish-db/catfish"
	"github.com/catfish-db/catfish/internal/rpcnet"
	"github.com/catfish-db/catfish/internal/stats"
	"github.com/catfish-db/catfish/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:7373", "server address, or comma-separated shard addresses in shard order")
		clients    = flag.Int("clients", 4, "concurrent client connections")
		requests   = flag.Int("requests", 2000, "requests per client")
		scale      = flag.Float64("scale", 0.001, "query scale (edges uniform in (0, scale])")
		method     = flag.String("method", "fast", "search method: fast | offload | fetch")
		adaptive   = flag.Bool("adaptive", false, "run Algorithm 1 (overrides -method)")
		fetch      = flag.Bool("fetch", false, "with -adaptive: enable the 3-way fetch branch")
		txT        = flag.Float64("txt", 0, "TX-utilization threshold for the fetch branch (0 = default)")
		multiIssue = flag.Bool("multiissue", false, "pipeline offloaded chunk reads")
		nodeCache  = flag.Int("nodecache", 0, "node cache capacity in decoded internal nodes (0 = off)")
		prefetch   = flag.Bool("prefetch", false, "speculatively extend offload span reads over preorder-adjacent subtrees")
		prefBudget = flag.Int("prefetch-budget", 64, "prefetch token-bucket capacity (with -prefetch)")
		mergeSpan  = flag.Int("merge-span", 0, "fold up to N adjacent chunk reads into one span round trip (0/1 = off)")
		insertFrac = flag.Float64("insert-fraction", 0, "fraction of requests that insert")
		batch      = flag.Int("batch", 1, "batch size B: coalesce B requests per frame (1 = unbatched)")
		seed       = flag.Int64("seed", 1, "random seed")
		maxConns   = flag.Int("max-conns", 0, "share at most N multiplexed TCP connections per server address across all workers (0 = one dedicated connection per worker)")
		deadline   = flag.Duration("deadline", 0, "per-operation latency budget; admission-controlled servers shed late ops (counted as overloaded, not errors)")
		healthMult = flag.Int("health-multiple", 0, "shard-liveness window in heartbeat intervals (0 = default 10); sharded runs only")
		backupsFl  = flag.String("backups", "", "per-shard backup addresses for failover and replica reads: semicolon-separated groups (one per shard, in shard order) of comma-separated addresses; empty groups allowed")
		replUtil   = flag.Float64("read-replica-util", 0, "predicted-utilization threshold above which searches route to the least-loaded backup (0 = off)")

		metricsAddr = flag.String("metrics-addr", "", "admin HTTP listen address serving live /metrics, /traces, and /debug/pprof for this driver (empty disables)")
		traceCap    = flag.Int("trace-cap", 1024, "trace ring capacity for /traces")
		traceEvery  = flag.Int("trace-every", 1, "sample 1 in every N searches into the trace ring")
	)
	flag.Parse()

	// Optional live observability for the driver itself: one registry and
	// trace ring shared by all worker connections.
	var reg *catfish.Registry
	var tr *catfish.Tracer
	if *metricsAddr != "" {
		reg = catfish.NewRegistry()
		tr = catfish.NewTracer(*traceCap, *traceEvery)
		mux := catfish.NewAdminMux(reg, tr)
		go func() {
			log.Printf("metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics listener: %v", err)
			}
		}()
	}

	forced := rpcnet.MethodFast
	switch *method {
	case "fast":
	case "offload":
		forced = rpcnet.MethodOffload
	case "fetch":
		forced = rpcnet.MethodFetch
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	addrs := strings.Split(*addr, ",")
	var shardBackups [][]string
	if *backupsFl != "" {
		groups := strings.Split(*backupsFl, ";")
		if len(groups) != len(addrs) {
			return fmt.Errorf("-backups lists %d groups for %d shards", len(groups), len(addrs))
		}
		shardBackups = make([][]string, len(groups))
		for i, g := range groups {
			if g != "" {
				shardBackups[i] = strings.Split(g, ",")
			}
		}
	}

	// One shared pool bounds the process's TCP connections; workers attach
	// logical streams instead of dialing their own sockets.
	var pool *catfish.MuxPool
	if *maxConns > 0 {
		pool = catfish.NewMuxPool(*maxConns)
		defer pool.Close()
	}

	type result struct {
		hist       *stats.Histogram
		stats      catfish.ClientSnapshot
		router     catfish.ShardRouterStats
		overloaded int
		err        error
	}
	results := make([]result, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			hist := stats.NewHistogram()
			results[i].hist = hist
			ccfg := catfish.NetClientConfig{
				Adaptive:   *adaptive,
				Forced:     forced,
				Fetch:      *fetch || forced == rpcnet.MethodFetch,
				TxT:        *txT,
				MultiIssue: *multiIssue,
				NodeCache:  *nodeCache,
				MergeSpan:  *mergeSpan,
				Seed:       *seed + int64(i),
			}
			if *prefetch {
				ccfg.Prefetch = *prefBudget
			}
			if reg != nil {
				// Each worker gets its own labelled view so per-connection
				// counters stay distinguishable on the scrape.
				ccfg.Metrics = reg.With("client", fmt.Sprint(i))
				ccfg.Trace = tr
			}
			ccfg.Deadline = *deadline
			// Connect resolves the shape: several addresses — or any
			// router-only option like backups — yield the scatter-gather
			// router, one address a direct client; the shared pool bounds
			// TCP connections either way.
			opts := []catfish.Option{catfish.WithClientConfig(ccfg)}
			if len(shardBackups) > 0 {
				opts = append(opts, catfish.WithBackups(shardBackups))
			}
			if *healthMult > 0 {
				opts = append(opts, catfish.WithHealthMultiple(*healthMult))
			}
			if *replUtil > 0 {
				opts = append(opts, catfish.WithReadReplicaUtil(*replUtil))
			}
			if pool != nil {
				opts = append(opts, catfish.WithMuxPool(pool))
			}
			c, err := catfish.Connect(addrs, opts...)
			if err != nil {
				results[i].err = err
				return
			}
			collect := func() {
				results[i].stats = results[i].stats.Add(c.Snapshot())
				if r, ok := c.(*catfish.NetRouter); ok {
					results[i].router = r.Stats()
				}
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(*seed + int64(i)*7919))
			nextOp := func(r int) rpcnet.BatchOp {
				if *insertFrac > 0 && rng.Float64() < *insertFrac {
					x, y := rng.Float64(), rng.Float64()
					return rpcnet.BatchOp{
						Type: wire.MsgInsert,
						Rect: catfish.NewRect(x, y, minf(x+1e-5, 1), minf(y+1e-5, 1)),
						Ref:  uint64(i)<<32 | uint64(r),
					}
				}
				w := rng.Float64() * *scale
				h := rng.Float64() * *scale
				x := rng.Float64() * (1 - w)
				y := rng.Float64() * (1 - h)
				return rpcnet.BatchOp{Type: wire.MsgSearch, Rect: catfish.NewRect(x, y, x+w, y+h)}
			}
			if *batch > 1 {
				ops := make([]rpcnet.BatchOp, 0, *batch)
				var bres []rpcnet.BatchResult
				for r := 0; r < *requests; {
					ops = ops[:0]
					for len(ops) < *batch && r < *requests {
						ops = append(ops, nextOp(r))
						r++
					}
					t0 := time.Now()
					bres = c.ExecBatch(ops, bres)
					elapsed := time.Since(t0)
					for _, br := range bres {
						if errors.Is(br.Err, rpcnet.ErrOverloaded) {
							results[i].overloaded++
							continue
						}
						if br.Err != nil {
							results[i].err = br.Err
							return
						}
						hist.Record(elapsed)
					}
				}
				collect()
				return
			}
			for r := 0; r < *requests; r++ {
				op := nextOp(r)
				t0 := time.Now()
				var err error
				if op.Type == wire.MsgInsert {
					err = c.Insert(op.Rect, op.Ref)
				} else {
					_, _, err = c.Search(op.Rect)
				}
				if errors.Is(err, rpcnet.ErrOverloaded) {
					// A typed shed is load feedback, not a failure: the
					// server is alive but refused the op within its
					// deadline.
					results[i].overloaded++
					continue
				}
				if err != nil {
					results[i].err = err
					return
				}
				hist.Record(time.Since(t0))
			}
			collect()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := stats.NewHistogram()
	var agg catfish.ClientSnapshot
	var rt catfish.ShardRouterStats
	overloaded := 0
	for i, r := range results {
		if r.err != nil {
			return fmt.Errorf("client %d: %w", i, r.err)
		}
		overloaded += r.overloaded
		total.Merge(r.hist)
		agg = agg.Add(r.stats)
		rt.Searches += r.router.Searches
		rt.Writes += r.router.Writes
		rt.Fanout += r.router.Fanout
		rt.Skipped += r.router.Skipped
		rt.UnhealthyWrites += r.router.UnhealthyWrites
		rt.Promotions += r.router.Promotions
		rt.BackupReads += r.router.BackupReads
		rt.MapAdoptions += r.router.MapAdoptions
	}
	s := total.Summarize()
	fmt.Printf("ops: %d in %v  =>  %.1f Kops\n", s.Count, elapsed.Round(time.Millisecond),
		float64(s.Count)/elapsed.Seconds()/1e3)
	fmt.Printf("latency: mean=%v p50=%v p95=%v p99=%v max=%v\n", s.Mean, s.P50, s.P95, s.P99, s.Max)
	if overloaded > 0 {
		fmt.Printf("overloaded: %d ops shed by admission control\n", overloaded)
	}
	if pool != nil {
		fmt.Printf("connections: %d TCP conns for %d logical clients (max %d per address)\n",
			pool.Conns(), *clients, *maxConns)
	}
	fmt.Printf("fast=%d offload=%d fetch=%d chunk reads=%d torn retries=%d\n",
		agg.FastSearches, agg.OffloadSearches, agg.FetchSearches, agg.NodesFetched, agg.TornRetries)
	if agg.FetchSearches > 0 {
		fmt.Printf("fetch: pulls=%d bytes=%d inline=%d retries=%d fallbacks=%d\n",
			agg.FetchPulls, agg.FetchBytes, agg.FetchInline, agg.FetchRetries, agg.FetchFallbacks)
	}
	if *batch > 1 {
		fmt.Printf("batches: %d containers carrying %d ops (B=%d)\n",
			agg.BatchesSent, agg.BatchedOps, *batch)
	}
	if *nodeCache > 0 {
		fmt.Printf("cache: hits=%d verified=%d misses=%d version reads=%d saved=%.1fMB\n",
			agg.CacheHits, agg.CacheVerifiedHits, agg.CacheMisses, agg.VersionReads,
			float64(agg.CacheBytesSaved)/1e6)
	}
	if *prefetch || *mergeSpan > 1 {
		ratio := 0.0
		if agg.ReadWQEs > 0 {
			ratio = float64(agg.NodesFetched+agg.VersionReads+agg.PrefetchIssued) / float64(agg.ReadWQEs)
		}
		fmt.Printf("prefetch: issued=%d hits=%d waste=%d  wqes=%d merge ratio=%.2f\n",
			agg.PrefetchIssued, agg.PrefetchHits, agg.PrefetchWaste, agg.ReadWQEs, ratio)
	}
	if len(addrs) > 1 && rt.Searches > 0 {
		fmt.Printf("shards: %d, fan-out/search=%.2f, skipped searches=%d, unhealthy writes=%d\n",
			len(addrs), float64(rt.Fanout)/float64(rt.Searches), rt.Skipped, rt.UnhealthyWrites)
	}
	if rt.Promotions > 0 || rt.BackupReads > 0 || rt.MapAdoptions > 0 {
		fmt.Printf("availability: promotions=%d backup reads=%d map adoptions=%d\n",
			rt.Promotions, rt.BackupReads, rt.MapAdoptions)
	}
	return nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
