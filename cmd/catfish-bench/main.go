// Command catfish-bench regenerates the paper's evaluation tables and
// figures on the simulated cluster.
//
// Usage:
//
//	catfish-bench -fig 10            # Fig 10+11 sweep (5 schemes)
//	catfish-bench -fig all           # every figure
//	catfish-bench -ablation all      # design-choice ablations
//	catfish-bench -fig 14 -quick     # smoke-test sizes
//	catfish-bench -fig 7 -full       # the paper's exact parameters (slow)
//
// Output is one aligned text table per figure; EXPERIMENTS.md records the
// paper-vs-measured comparison for the default configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/catfish-db/catfish/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "catfish-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig      = flag.String("fig", "", "figure to regenerate: 2,7,8,9,10,11,12,13,14,all")
		ablation = flag.String("ablation", "", "ablation to run: n,t,heartbeat,multiissue,chunk,prefetch,fetch,shards,failover,autoscale,all")
		quick    = flag.Bool("quick", false, "smoke-test sizes")
		full     = flag.Bool("full", false, "the paper's exact parameters (slow)")
		dataset  = flag.Int("dataset", 0, "override dataset size")
		requests = flag.Int("requests", 0, "override requests per client")
		clients  = flag.String("clients", "", "override client sweep, e.g. 32,64,128")
		batch    = flag.Int("batch", 0, "client batch size B for batched columns (default 16)")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *fig == "" && *ablation == "" {
		flag.Usage()
		return fmt.Errorf("pass -fig or -ablation")
	}

	opts := bench.Options{
		Quick:       *quick,
		Full:        *full,
		DatasetSize: *dataset,
		Requests:    *requests,
		BatchSize:   *batch,
		Seed:        *seed,
	}
	if *clients != "" {
		for _, part := range strings.Split(*clients, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -clients value %q: %w", part, err)
			}
			opts.Clients = append(opts.Clients, n)
		}
	}

	if *fig != "" {
		// 10/11 and 12/13 are one experiment each (throughput + latency
		// views), so "all" lists them once.
		for _, f := range expand(*fig, []string{"2", "7", "8", "9", "10", "12", "14"}) {
			if err := runFig(f, opts); err != nil {
				return err
			}
		}
	}
	if *ablation != "" {
		for _, a := range expand(*ablation, []string{"n", "t", "heartbeat", "multiissue", "batch", "chunk", "rootcache", "nodecache", "prefetch", "predictor", "fetch", "shards", "failover", "autoscale", "moving", "knn", "hotspot", "framework"}) {
			if err := runAblation(a, opts); err != nil {
				return err
			}
		}
	}
	return nil
}

func expand(sel string, all []string) []string {
	if sel == "all" {
		return all
	}
	return strings.Split(sel, ",")
}

func section(title string, started time.Time) {
	fmt.Printf("=== %s (%.1fs) ===\n", title, time.Since(started).Seconds())
}

func runFig(fig string, opts bench.Options) error {
	start := time.Now()
	switch fig {
	case "2":
		t, _, err := bench.Fig2(opts)
		if err != nil {
			return err
		}
		section("Fig 2: TCP-1G server CPU vs bandwidth saturation", start)
		fmt.Println(t)
	case "7":
		t, _, err := bench.Fig7(opts)
		if err != nil {
			return err
		}
		section("Fig 7: polling- vs event-based fast messaging", start)
		fmt.Println(t)
	case "8":
		t, _, err := bench.Fig8(opts)
		if err != nil {
			return err
		}
		section("Fig 8: offloading with multi-issue", start)
		fmt.Println(t)
	case "9":
		t, err := bench.Fig9(opts)
		if err != nil {
			return err
		}
		section("Fig 9: communication micro-benchmark", start)
		fmt.Println(t)
	case "10", "11":
		thr, lat, results, err := bench.Fig10And11(opts)
		if err != nil {
			return err
		}
		section("Fig 10: throughput, 100% search (Kops)", start)
		fmt.Println(thr)
		section("Fig 11: latency, 100% search (mean µs)", start)
		fmt.Println(lat)
		fmt.Println("Catfish speedups across the sweep:")
		fmt.Println(bench.Speedups(results))
		fmt.Println("Offloaded reads per search:")
		fmt.Println(bench.ReadsPerSearch(results))
	case "12", "13":
		thr, lat, results, err := bench.Fig12And13(opts)
		if err != nil {
			return err
		}
		section("Fig 12: throughput, 90% search + 10% insert (Kops)", start)
		fmt.Println(thr)
		section("Fig 13: latency, 90% search + 10% insert (mean µs)", start)
		fmt.Println(lat)
		fmt.Println("Catfish speedups across the sweep:")
		fmt.Println(bench.Speedups(results))
		fmt.Println("Offloaded reads per search:")
		fmt.Println(bench.ReadsPerSearch(results))
	case "14":
		thr, lat, results, err := bench.Fig14(opts)
		if err != nil {
			return err
		}
		section("Fig 14a: rea02 throughput (Kops)", start)
		fmt.Println(thr)
		section("Fig 14b: rea02 latency (mean µs)", start)
		fmt.Println(lat)
		fmt.Println("Catfish speedups across the sweep:")
		fmt.Println(bench.Speedups(results))
		fmt.Println("Offloaded reads per search:")
		fmt.Println(bench.ReadsPerSearch(results))
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func runAblation(name string, opts bench.Options) error {
	start := time.Now()
	var (
		t   interface{ String() string }
		err error
	)
	switch name {
	case "n":
		t, err = bench.AblationBackoffN(opts)
	case "t":
		t, err = bench.AblationThresholdT(opts)
	case "heartbeat":
		t, err = bench.AblationHeartbeat(opts)
	case "multiissue":
		t, err = bench.AblationMultiIssueDepth(opts)
	case "batch":
		t, err = bench.AblationBatchSize(opts)
	case "chunk":
		t, err = bench.AblationChunkSize(opts)
	case "rootcache":
		t, err = bench.AblationRootCache(opts)
	case "nodecache":
		t, err = bench.AblationNodeCache(opts)
	case "prefetch":
		t, err = bench.AblationPrefetch(opts)
	case "predictor":
		t, err = bench.AblationPredictor(opts)
	case "fetch":
		t, err = bench.AblationFetch(opts)
	case "shards":
		t, err = bench.AblationShards(opts)
	case "failover":
		t, err = bench.AblationFailover(opts)
	case "autoscale":
		t, err = bench.AblationAutoscale(opts)
	case "moving":
		t, err = bench.AblationMovingObjects(opts)
	case "knn":
		t, err = bench.AblationKNN(opts)
	case "hotspot":
		t, err = bench.AblationHotspot(opts)
	case "framework":
		t, err = bench.Framework(opts)
	default:
		return fmt.Errorf("unknown ablation %q", name)
	}
	if err != nil {
		return err
	}
	section("ablation: "+name, start)
	fmt.Println(t)
	return nil
}
