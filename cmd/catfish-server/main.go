// Command catfish-server serves a Catfish R-tree over real TCP.
//
// It builds (or loads) a dataset, bulk-loads the region-backed R*-tree,
// and serves search/insert/delete plus emulated one-sided chunk reads:
//
//	catfish-server -addr :7373 -items 2000000
//	catfish-server -addr :7373 -dataset rea02 -heartbeat 10ms
//	catfish-server -addr :7373 -load rects.bin     # from catfish-gen
//	catfish-server -addr :7373 -shards 4 -shard-index 0   # shard 0 of 4
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	catfish "github.com/catfish-db/catfish"
	"github.com/catfish-db/catfish/internal/dataio"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:7373", "listen address")
		items     = flag.Int("items", 200_000, "synthetic dataset size")
		dataset   = flag.String("dataset", "uniform", "dataset kind: uniform | rea02")
		load      = flag.String("load", "", "load dataset from a catfish-gen file instead")
		heartbeat = flag.Duration("heartbeat", 10*time.Millisecond, "heartbeat interval (0 disables)")
		fanout    = flag.Int("fanout", 64, "R-tree fan-out M")
		batch     = flag.Int("batch", 0, "max ops accepted per batch container (0 = wire limit)")
		seed      = flag.Int64("seed", 1, "dataset seed")
		shards    = flag.Int("shards", 1, "total shard count of the deployment (1 = unsharded)")
		shardIdx  = flag.Int("shard-index", 0, "this server's shard index, 0-based; every shard must be started with identical dataset flags")
		maxInsert = flag.Float64("max-insert-edge", 1e-5, "largest rectangle edge clients will insert (widens shard coverage)")

		shardAddrs = flag.String("shard-addrs", "", "comma-separated client-reachable addresses of every shard, in shard order (served with the shard map so routers can dial shards that appear mid-run)")
		backups    = flag.String("backups", "", "comma-separated backup addresses this primary replicates to (arms replication)")
		backup     = flag.Bool("backup", false, "start as a backup: reject client writes until promoted")
		replEpoch  = flag.Uint64("repl-epoch", 0, "starting replication epoch (0 = 1); all replicas of a shard must agree")
		healthMult = flag.Int("health-multiple", 0, "shard-liveness window in heartbeat intervals (0 = default); bounds the replication ack deadline")

		fetchSlots  = flag.Int("fetch-slots", 0, "result-mailbox slots for remote result fetching (0 disables)")
		fetchChunks = flag.Int("fetch-slot-chunks", 0, "chunks per mailbox slot (0 = default)")
		fetchInline = flag.Int("fetch-inline", 0, "largest result answered inline instead of via the mailbox, in items (0 = default)")
		txLineRate  = flag.Float64("tx-gbps", 0, "modelled NIC TX line rate in Gb/s for the heartbeat TX-utilization signal (0 disables the signal)")

		maxConns      = flag.Int("max-conns", 0, "cap on concurrently accepted client connections (0 = unlimited); excess dials are refused at accept")
		admissionUtil = flag.Float64("admission-util", 0, "smoothed utilization (CPU, or TX with -tx-gbps) past which deadline-aware admission control arms and sheds with Overloaded (0 disables)")
		autoscaleOn   = flag.Bool("autoscale", false, "grow this process by splitting hot shards into additional in-process listeners (single host; requires -shards 1, heartbeats, no replication)")
		autoscaleMaxK = flag.Int("autoscale-max-k", 4, "shard-count cap for -autoscale")
		autoscaleUtil = flag.Float64("autoscale-util", 0.7, "utilization threshold past which -autoscale splits the hottest shard")

		metricsAddr = flag.String("metrics-addr", "", "admin HTTP listen address serving /metrics (Prometheus text), /traces (JSON), and /debug/pprof (empty disables)")
		traceCap    = flag.Int("trace-cap", 1024, "trace ring capacity for /traces")
		traceEvery  = flag.Int("trace-every", 1, "sample 1 in every N search requests into the trace ring")
	)
	flag.Parse()

	var entries []catfish.Entry
	switch {
	case *load != "":
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		defer f.Close()
		entries, err = dataio.ReadEntries(f)
		if err != nil {
			return fmt.Errorf("load %s: %w", *load, err)
		}
	case *dataset == "rea02":
		entries = catfish.Rea02Like(catfish.Rea02Config{N: *items, Seed: *seed})
	case *dataset == "uniform":
		entries = catfish.UniformRects(*items, 0.0001, *seed)
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}

	// Sharded deployment: every shard builds the identical map from the
	// full dataset (same flags, same seed), then keeps only its own slice.
	var smap *catfish.ShardMap
	if *shards > 1 {
		if *shardIdx < 0 || *shardIdx >= *shards {
			return fmt.Errorf("-shard-index %d out of range for -shards %d", *shardIdx, *shards)
		}
		var err error
		smap, err = catfish.BuildShardMap(entries, catfish.ShardConfig{
			K:             *shards,
			MaxInsertEdge: *maxInsert,
		})
		if err != nil {
			return err
		}
		own := smap.Assign(entries)[*shardIdx]
		log.Printf("shard %d/%d owns %d of %d rectangles (map version %#x)",
			*shardIdx, *shards, len(own), len(entries), smap.Version)
		entries = own
	}

	perLeaf := *fanout / 2
	chunks := len(entries)/perLeaf + len(entries)/(perLeaf*perLeaf) + 4096
	reg, err := catfish.NewMemoryRegion(chunks*2, 4096)
	if err != nil {
		return err
	}
	tree, err := catfish.NewTree(reg, catfish.TreeConfig{MaxEntries: *fanout})
	if err != nil {
		return err
	}
	start := time.Now()
	if len(entries) > 0 {
		if err := tree.BulkLoad(entries, 0); err != nil {
			return err
		}
	}
	log.Printf("loaded %d rectangles in %v (height %d, region %d MB)",
		tree.Len(), time.Since(start).Round(time.Millisecond), tree.Height(), reg.Size()>>20)

	srvCfg := catfish.NetServerConfig{
		HeartbeatInterval: *heartbeat,
		MaxBatch:          *batch,
		ShardMap:          smap,
		ShardIndex:        *shardIdx,
		FetchSlots:        *fetchSlots,
		FetchSlotChunks:   *fetchChunks,
		FetchInlineMax:    *fetchInline,
		TXLineRateBps:     *txLineRate * 1e9,
		MaxConns:          *maxConns,
		AdmissionUtil:     *admissionUtil,
	}
	if *shardAddrs != "" {
		srvCfg.ShardAddrs = strings.Split(*shardAddrs, ",")
		if len(srvCfg.ShardAddrs) != *shards {
			return fmt.Errorf("-shard-addrs lists %d addresses for -shards %d", len(srvCfg.ShardAddrs), *shards)
		}
	}
	if *backups != "" || *backup {
		rc := &catfish.NetReplicaConfig{
			Primary: !*backup,
			Epoch:   *replEpoch,
		}
		if *backups != "" {
			rc.Backups = strings.Split(*backups, ",")
		}
		// The ack deadline mirrors the routers' liveness window: a backup
		// slower than a missed-heartbeat verdict is dropped from the stream.
		if *healthMult > 0 && *heartbeat > 0 {
			rc.AckTimeout = time.Duration(*healthMult) * *heartbeat
		}
		srvCfg.Replica = rc
		role := "primary"
		if *backup {
			role = "backup"
		}
		log.Printf("replication armed: role=%s backups=%d epoch=%d", role, len(rc.Backups), *replEpoch)
	}

	if *autoscaleOn {
		switch {
		case *shards > 1:
			return fmt.Errorf("-autoscale grows from a single shard; start with -shards 1")
		case srvCfg.Replica != nil:
			return fmt.Errorf("-autoscale and replication are mutually exclusive")
		case *heartbeat <= 0:
			return fmt.Errorf("-autoscale needs heartbeats for utilization and map adoption")
		}
	}

	// Admin endpoint: a registry (shard-labelled when part of a sharded
	// deployment) plus a bounded trace ring, served on their own listener so
	// scrapes never contend with the data port.
	if *metricsAddr != "" {
		reg := catfish.NewRegistry()
		scoped := reg
		if *shards > 1 {
			scoped = reg.With("shard", strconv.Itoa(*shardIdx))
		}
		tr := catfish.NewTracer(*traceCap, *traceEvery)
		srvCfg.Metrics = scoped
		srvCfg.Trace = tr
		mux := catfish.NewAdminMux(reg, tr)
		go func() {
			log.Printf("metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics listener: %v", err)
			}
		}()
	}

	// The autoscaler scrapes the server's own registry in-process, so it
	// works without -metrics-addr — but the gauges must exist before Listen.
	if *autoscaleOn && srvCfg.Metrics == nil {
		srvCfg.Metrics = catfish.NewRegistry()
	}

	srv, err := catfish.Listen(*addr, tree, srvCfg)
	if err != nil {
		return err
	}
	log.Printf("serving on %s (root chunk %d, chunk size %d)",
		srv.Addr(), tree.RootChunk(), reg.ChunkSize())

	if *autoscaleOn {
		// A committed K=1 map (carrying the address table) is what
		// PrepareReshard subdivides on the first split.
		m, err := catfish.BuildShardMap(entries, catfish.ShardConfig{K: 1, MaxInsertEdge: *maxInsert})
		if err != nil {
			return err
		}
		if err := srv.AdoptShardMap(m, 0, []string{srv.Addr().String()}); err != nil {
			return err
		}
		host, _, err := net.SplitHostPort(srv.Addr().String())
		if err != nil {
			return err
		}
		base := srvCfg
		base.ShardMap = nil
		base.ShardIndex = 0
		base.Trace = nil
		sc := &selfScaler{
			srvs:  []*catfish.NetServer{srv},
			regs:  []*catfish.Registry{srvCfg.Metrics},
			addrs: []string{srv.Addr().String()},
			hb:    *heartbeat,
			host:  host,
			newCfg: func(r *catfish.Registry) catfish.NetServerConfig {
				cfg := base
				cfg.Metrics = r
				return cfg
			},
			newTree: func() (*catfish.Tree, error) {
				r, err := catfish.NewMemoryRegion(chunks*2, 4096)
				if err != nil {
					return nil, err
				}
				return catfish.NewTree(r, catfish.TreeConfig{MaxEntries: *fanout})
			},
		}
		go runSelfScaler(sc, *autoscaleUtil, *autoscaleMaxK)
	}
	return srv.Serve()
}
