package main

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	catfish "github.com/catfish-db/catfish"
	"github.com/catfish-db/catfish/internal/autoscale"
)

// selfScaler grows a single-process deployment: an autoscale.Controller
// scrapes every in-process server's registry and, when one pegs past the
// scale-up threshold, splits it through the live-resharding path into an
// additional listener in this same process. Routers adopt the bumped map
// from heartbeats, so a deployment started as one server scales to
// -autoscale-max-k without restarting anything. Single-host by design —
// spawned listeners bind ephemeral ports on the same interface.
type selfScaler struct {
	mu    sync.Mutex
	srvs  []*catfish.NetServer
	regs  []*catfish.Registry
	addrs []string
	hb    time.Duration
	host  string // interface spawned listeners bind ("" = all)

	newCfg  func(*catfish.Registry) catfish.NetServerConfig
	newTree func() (*catfish.Tree, error)
}

// Scrape reads each server's registry in-process — the same Prometheus
// text the /metrics endpoint would serve, without requiring one.
func (s *selfScaler) Scrape() ([]autoscale.Sample, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]autoscale.Sample, len(s.regs))
	for i, reg := range s.regs {
		out[i].Shard = i
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			out[i].Err = err
			continue
		}
		out[i].Util, out[i].TXUtil, out[i].Err = autoscale.ParseUtilization(&buf)
	}
	return out, nil
}

// Split implements autoscale.Actuator: spawn an empty in-process server,
// stream the peeled half over under PrepareReshard, publish the committed
// map everywhere, and drain the dual-write once routers have had time to
// adopt it from heartbeats.
func (s *selfScaler) Split(i int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.srvs) {
		return len(s.srvs), fmt.Errorf("split of unknown shard %d", i)
	}
	tree, err := s.newTree()
	if err != nil {
		return len(s.srvs), err
	}
	reg := catfish.NewRegistry()
	srv, err := catfish.Listen(net.JoinHostPort(s.host, "0"), tree, s.newCfg(reg))
	if err != nil {
		return len(s.srvs), err
	}
	go srv.Serve() //nolint:errcheck // returns on Close
	newAddr := srv.Addr().String()
	nm, err := s.srvs[i].PrepareReshard(newAddr)
	if err != nil {
		srv.Close()
		return len(s.srvs), err
	}
	newAddrs := append(append([]string(nil), s.addrs...), newAddr)
	if err := srv.AdoptShardMap(nm, nm.K()-1, newAddrs); err != nil {
		srv.Close()
		return len(s.srvs), err
	}
	if _, err := s.srvs[i].CommitReshard(); err != nil {
		srv.Close()
		return len(s.srvs), err
	}
	for j, other := range s.srvs {
		if j != i {
			if err := other.AdoptShardMap(nm, j, newAddrs); err != nil {
				return len(s.srvs), err
			}
		}
	}
	s.srvs = append(s.srvs, srv)
	s.regs = append(s.regs, reg)
	s.addrs = newAddrs
	old := s.srvs[i]
	hb := s.hb
	go func() {
		// Routers adopt the bumped map from heartbeats; well past their
		// liveness window the dual-write duplication costs more than a
		// straggler's correctness (a stale router still gets right answers
		// from the dual-written old shard until it converges).
		time.Sleep(20 * hb)
		old.DrainSplit() //nolint:errcheck // shed duplication is benign
	}()
	log.Printf("autoscale: split shard %d -> K=%d (new server on %s)", i, nm.K(), newAddr)
	return nm.K(), nil
}

// runSelfScaler wires the controller and blocks forever (the server's
// Serve loop runs elsewhere).
func runSelfScaler(s *selfScaler, util float64, maxK int) {
	ctl := autoscale.NewController(s, s, autoscale.PolicyConfig{
		ScaleUpUtil: util,
		TargetUtil:  util * 0.8,
		MaxK:        maxK,
		Cooldown:    10 * s.hb,
	})
	log.Printf("autoscale: controller on (threshold %.2f, max K %d)", util, maxK)
	ctl.Run(make(chan struct{}), 2*s.hb)
}
