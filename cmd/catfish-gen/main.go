// Command catfish-gen generates dataset files for catfish-server:
//
//	catfish-gen -out rects.bin -items 2000000                 # uniform
//	catfish-gen -out rea02.bin -dataset rea02 -items 1888012  # rea02-like
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	catfish "github.com/catfish-db/catfish"
	"github.com/catfish-db/catfish/internal/dataio"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		out     = flag.String("out", "", "output file (required)")
		items   = flag.Int("items", 2_000_000, "rectangle count")
		dataset = flag.String("dataset", "uniform", "dataset kind: uniform | rea02")
		maxEdge = flag.Float64("maxedge", 0.0001, "uniform dataset: maximum rectangle edge")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		return fmt.Errorf("-out is required")
	}
	var entries []catfish.Entry
	switch *dataset {
	case "uniform":
		entries = catfish.UniformRects(*items, *maxEdge, *seed)
	case "rea02":
		entries = catfish.Rea02Like(catfish.Rea02Config{N: *items, Seed: *seed})
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dataio.WriteEntries(f, entries); err != nil {
		return err
	}
	log.Printf("wrote %d rectangles to %s", len(entries), *out)
	return f.Close()
}
