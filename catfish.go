// Package catfish is an RDMA-enabled R-tree for low latency and high
// throughput, reproducing "Catfish: Adaptive RDMA-enabled R-Tree for Low
// Latency and High Throughput" (Xiao, Wang, Geng, Lee, Zhang — ICDCS 2019).
//
// Catfish serves spatial range queries against a server-resident R*-tree
// through two complementary RDMA access methods and switches between them
// adaptively, per client, at runtime:
//
//   - Fast messaging — the client RDMA-Writes a request into a server-side
//     ring buffer; a server worker executes the search and RDMA-Writes the
//     response back. One round trip, lowest latency, burns server CPU.
//   - RDMA offloading — the client traverses the tree itself with one-sided
//     RDMA Reads against the server's registered memory region, validating
//     FaRM-style per-cacheline versions. Zero server CPU, multiple round
//     trips (pipelined by multi-issue), burns server NIC bandwidth.
//
// The adaptive back-off algorithm (paper Algorithm 1) reads the server's
// CPU-utilization heartbeats and offloads a randomized, exponentially
// growing window of searches whenever the server is saturated, so the
// fleet of clients harvests idle client CPUs and spare bandwidth without
// stampeding away from the server.
//
// Because real InfiniBand hardware is not assumed, the package ships a
// deterministic discrete-event fabric (NICs, links, CPUs, verbs) on which
// the full system runs with real data paths — ring-buffer framing, version
// checks, torn-read retries are all genuine — plus a real TCP mode
// (package rpcnet) for running across actual processes.
//
// Entry points:
//
//   - NewEngine / NewNetwork / NewServer / NewClient build a simulated
//     cluster piece by piece (see examples/geonearby).
//   - RunExperiment executes a full paper-style evaluation run and returns
//     throughput/latency/utilization measurements (see examples/adaptive
//     and bench_test.go, which regenerates every figure of the paper).
//   - NewTree / NewMemoryRegion expose the standalone R*-tree over a
//     chunked, versioned memory region (see examples/quickstart).
package catfish

import (
	"time"

	"github.com/catfish-db/catfish/internal/client"
	"github.com/catfish-db/catfish/internal/cluster"
	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/server"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/stats"
	"github.com/catfish-db/catfish/internal/workload"
)

// Geometry and index types.
type (
	// Rect is an axis-aligned rectangle in the unit square.
	Rect = geo.Rect
	// Entry is one indexed item: a rectangle plus an opaque reference.
	Entry = rtree.Entry
	// Tree is the R*-tree stored node-per-chunk in a Region.
	Tree = rtree.Tree
	// TreeConfig tunes fan-out, underflow bound, and reinsertion.
	TreeConfig = rtree.Config
	// OpStats reports the work one tree operation performed.
	OpStats = rtree.OpStats
	// Node is a decoded R-tree node (offloading clients traverse these).
	Node = rtree.Node
	// Region is the chunked, version-protected registered memory region.
	Region = region.Region
)

// NewRect returns the rectangle spanning two corner points, normalizing
// coordinate order.
func NewRect(x1, y1, x2, y2 float64) Rect { return geo.NewRect(x1, y1, x2, y2) }

// PointRect returns the degenerate rectangle covering exactly (x, y).
func PointRect(x, y float64) Rect { return geo.PointRect(x, y) }

// MBR returns the minimum bounding rectangle of rects.
func MBR(rects []Rect) Rect { return geo.MBR(rects) }

// NewMemoryRegion allocates a registered memory region of nchunks chunks of
// chunkSize bytes (chunkSize must be a multiple of 64).
func NewMemoryRegion(nchunks, chunkSize int) (*Region, error) {
	return region.New(nchunks, chunkSize)
}

// NewTree creates an empty R*-tree whose nodes live in reg.
func NewTree(reg *Region, cfg TreeConfig) (*Tree, error) {
	return rtree.New(reg, cfg)
}

// Simulation types.
type (
	// Engine is the deterministic discrete-event engine driving a
	// simulated cluster.
	Engine = sim.Engine
	// Proc is a simulated process; all client/server calls take one.
	Proc = sim.Proc
	// WaitGroup synchronizes simulated processes.
	WaitGroup = sim.WaitGroup
	// CPU is a processor-sharing multi-core model.
	CPU = sim.CPU
)

// NewEngine returns an engine seeded for reproducible runs.
func NewEngine(seed int64) *Engine { return sim.New(seed) }

// NewCPU returns a processor-sharing CPU with the given core count.
func NewCPU(e *Engine, cores int) *CPU { return sim.NewCPU(e, cores) }

// NewWaitGroup returns a wait group bound to e.
func NewWaitGroup(e *Engine) *WaitGroup { return sim.NewWaitGroup(e) }

// Fabric types.
type (
	// Network is one fabric instance (profile plus attached hosts).
	Network = fabric.Network
	// Host is a machine with a NIC and optionally a CPU.
	Host = fabric.Host
	// FabricProfile describes a fabric's performance envelope.
	FabricProfile = netmodel.Profile
	// CostModel converts R-tree work into CPU service demands.
	CostModel = netmodel.CostModel
)

// The paper testbed's three fabrics.
var (
	// Ethernet1G is kernel TCP over the Intel I350 1 Gbps NIC.
	Ethernet1G = netmodel.Ethernet1G
	// Ethernet40G is kernel TCP over the ConnectX-3 40 Gbps NIC.
	Ethernet40G = netmodel.Ethernet40G
	// InfiniBand100G is RC verbs over the ConnectX-5 EDR 100 Gbps HCA.
	InfiniBand100G = netmodel.InfiniBand100G
)

// NewNetwork attaches a fabric with the given profile to the engine.
func NewNetwork(e *Engine, prof FabricProfile) *Network { return fabric.NewNetwork(e, prof) }

// DefaultCostModel returns the calibrated CPU cost model.
func DefaultCostModel() CostModel { return netmodel.DefaultCostModel() }

// Server and client types.
type (
	// Server is the Catfish R-tree server.
	Server = server.Server
	// ServerConfig configures a Server.
	ServerConfig = server.Config
	// ServerMode selects polling or event-based workers.
	ServerMode = server.Mode
	// Endpoint is the connection handle a client consumes.
	Endpoint = server.Endpoint
	// Client is one Catfish client.
	Client = client.Client
	// ClientConfig configures a Client.
	ClientConfig = client.Config
	// Method identifies how a search executed (fast/offload/tcp).
	Method = client.Method
)

// Server modes (paper §IV-B).
const (
	// ModeEvent blocks workers on completion-queue events.
	ModeEvent = server.ModeEvent
	// ModePolling busy-polls rings (the FaRM-style baseline).
	ModePolling = server.ModePolling
)

// Search methods.
const (
	// MethodFast is RDMA-Write fast messaging.
	MethodFast = client.MethodFast
	// MethodOffload is one-sided-read client traversal.
	MethodOffload = client.MethodOffload
	// MethodTCP is the socket baseline.
	MethodTCP = client.MethodTCP
)

// NewServer creates a Catfish server.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewClient creates a Catfish client.
func NewClient(cfg ClientConfig) (*Client, error) { return client.New(cfg) }

// Workload types.
type (
	// QueryGen produces search rectangles.
	QueryGen = workload.QueryGen
	// UniformScale draws query edges uniform in (0, Scale].
	UniformScale = workload.UniformScale
	// PowerLawScale draws the query scale from a power law.
	PowerLawScale = workload.PowerLawScale
	// SkewedInserts is the paper's §V-B skewed insert stream.
	SkewedInserts = workload.SkewedInserts
	// Mix interleaves searches and inserts.
	Mix = workload.Mix
	// Rea02Config shapes the synthetic rea02 dataset.
	Rea02Config = workload.Rea02Config
)

// UniformRects builds the paper's uniform base dataset.
func UniformRects(n int, maxEdge float64, seed int64) []Entry {
	return workload.UniformRects(n, maxEdge, seed)
}

// Rea02Like synthesizes the rea02-structured dataset (§V-C).
func Rea02Like(cfg Rea02Config) []Entry { return workload.Rea02Like(cfg) }

// NewRea02Queries returns the ~100-result query generator for rea02.
func NewRea02Queries(n int) QueryGen { return workload.NewRea02Queries(n) }

// NewMix builds a search/insert mix; insertFraction 0 is search-only.
func NewMix(queries QueryGen, inserts SkewedInserts, insertFraction float64, refBase uint64) *Mix {
	return workload.NewMix(queries, inserts, insertFraction, refBase)
}

// Experiment types.
type (
	// Scheme is one evaluated system (TCP baselines, FaRM baselines,
	// Catfish).
	Scheme = cluster.Scheme
	// ExperimentConfig describes one evaluation run.
	ExperimentConfig = cluster.Config
	// ExperimentResult aggregates a run's measurements.
	ExperimentResult = cluster.Result
	// LatencySummary is a latency distribution snapshot.
	LatencySummary = stats.Summary
	// MicroPoint is one micro-benchmark measurement (Fig 9).
	MicroPoint = cluster.MicroPoint
	// MicroMethod selects the micro-benchmark transport.
	MicroMethod = cluster.MicroMethod
)

// The paper's evaluated schemes plus the §IV ablation variants.
var (
	// SchemeTCP1G is the socket baseline on 1 Gbps Ethernet.
	SchemeTCP1G = cluster.SchemeTCP1G
	// SchemeTCP40G is the socket baseline on 40 Gbps Ethernet.
	SchemeTCP40G = cluster.SchemeTCP40G
	// SchemeFastMessaging is the polling fast-messaging baseline.
	SchemeFastMessaging = cluster.SchemeFastMessaging
	// SchemeOffloading is the single-issue offloading baseline.
	SchemeOffloading = cluster.SchemeOffloading
	// SchemeCatfish is the full adaptive system.
	SchemeCatfish = cluster.SchemeCatfish
	// SchemeFastEvent isolates event-based fast messaging (§IV-B).
	SchemeFastEvent = cluster.SchemeFastEvent
	// SchemeOffloadMulti isolates multi-issue offloading (§IV-C).
	SchemeOffloadMulti = cluster.SchemeOffloadMulti
)

// Micro-benchmark transports (Fig 9).
const (
	// MicroTCP is a TCP echo exchange.
	MicroTCP = cluster.MicroTCP
	// MicroRDMARead fetches chunks with one-sided reads.
	MicroRDMARead = cluster.MicroRDMARead
	// MicroRDMAWrite pushes chunks with signaled writes.
	MicroRDMAWrite = cluster.MicroRDMAWrite
)

// RunExperiment executes one evaluation run.
func RunExperiment(cfg ExperimentConfig) (ExperimentResult, error) { return cluster.Run(cfg) }

// RunMicro executes the Fig 9 micro-benchmark for one transport.
func RunMicro(prof FabricProfile, method MicroMethod, sizes []int, iters int, seed int64) ([]MicroPoint, error) {
	return cluster.RunMicro(prof, method, sizes, iters, seed)
}

// DefaultHeartbeatInterval is the paper's heartbeat period.
const DefaultHeartbeatInterval = 10 * time.Millisecond
