module github.com/catfish-db/catfish

go 1.22
