package catfish

import (
	"github.com/catfish-db/catfish/internal/rpcnet"
	"github.com/catfish-db/catfish/internal/shard"
)

// Sharded deployments: the dataset is spatially partitioned into K shard
// rectangles, each served by its own Catfish server with its own adaptive
// switch, and a router scatters searches to every shard whose coverage
// intersects the query while writes go to the unique owning shard. See
// internal/shard for the partitioning scheme and DESIGN.md for the
// exactness invariant.
type (
	// ShardMap is a versioned spatial partition of the plane into K cells.
	ShardMap = shard.Map
	// ShardConfig tunes BuildShardMap.
	ShardConfig = shard.Config
	// ShardRouterStats counts a router's scatter/gather activity.
	ShardRouterStats = shard.RouterStats
	// ShardUnhealthyError reports which shard rejected a write for missing
	// heartbeats; it matches ErrShardUnhealthy via errors.Is.
	ShardUnhealthyError = shard.UnhealthyError
	// NetRouter is the real-TCP scatter-gather client of a sharded
	// deployment: one connection (and one adaptive switch) per shard.
	NetRouter = rpcnet.Router
	// NetRouterConfig configures DialRouter.
	NetRouterConfig = rpcnet.RouterConfig
)

// ErrShardUnhealthy marks writes rejected because the owning shard has
// stopped heartbeating.
var ErrShardUnhealthy = shard.ErrUnhealthy

// DefaultShardHealthMultiple is the default liveness window in heartbeat
// intervals: a shard with no heartbeat for this many intervals is skipped
// by searches and rejects writes.
const DefaultShardHealthMultiple = shard.DefaultHealthMultiple

// BuildShardMap partitions entries into cfg.K shard rectangles by
// recursive longest-axis splitting. Every server of a deployment must
// build the map from the identical dataset; the map's Version doubles as
// a checksum that DialRouter verifies against every shard.
func BuildShardMap(entries []Entry, cfg ShardConfig) (*ShardMap, error) {
	return shard.Build(entries, cfg)
}

// DialRouter connects to every shard of a real-TCP deployment (addresses
// in shard order), validates that the servers agree on the deployment
// shape, and returns the scatter-gather router. A single unsharded
// address yields a trivial one-shard router.
//
// Deprecated: use Connect, which unifies single-server and routed
// construction behind functional options.
func DialRouter(addrs []string, cfg NetRouterConfig) (*NetRouter, error) {
	return rpcnet.DialRouter(addrs, cfg)
}
